//! Mutation self-validation: seed known violations into known-good
//! programs and assert the analyzer flags every mutant. A static checker
//! that only ever prints green has no evidence behind it; this module is
//! the evidence.
//!
//! Six mutation classes, each attacking one invariant the toolchain
//! claims to prove:
//!
//! * **guard-mask-widen** — widen a lane-extraction `And` mask by one
//!   bit, letting a guard bit of the neighbor lane leak through;
//! * **lane-widen** — claim one extra bit of operand width against the
//!   same lane layout (the Eq. 1 budget no longer holds);
//! * **barrier-drop** — replace one `Bar` with `Nop`, merging two
//!   staging intervals into one racy interval;
//! * **deep-k** — run the paper (no-spill) policy at a K beyond its
//!   safe accumulation depth;
//! * **spill-drop** — delete one accumulator-clear after a lane spill,
//!   so the next chunk accumulates on top of a full lane;
//! * **illegal-reorder** — swap instruction pairs a static scheduler
//!   must never swap (a RAW-dependent pair; a memory access across a
//!   barrier), validated against the scheduler's own legality gate
//!   rather than the lane/hazard verifier.
//!
//! Mutations replace instructions **in place** (never insert or
//! delete): branch targets are absolute indices and must stay valid.
//! The reorder class swaps adjacent instructions, which preserves the
//! same invariant.

use crate::{packed_context, tc_context_for_mutation, verify_with_context, Violation};
use vitbit_core::policy::PackSpec;
use vitbit_sim::decoded::{MicroOp, CTRL_PIPE};
use vitbit_sim::{Op, Program, Src};

/// Outcome of one mutant.
#[derive(Debug, Clone)]
pub struct MutantResult {
    /// Which program / instruction was perturbed.
    pub description: String,
    /// Whether the analyzer flagged the mutant (it must).
    pub flagged: bool,
    /// The violations raised. Empty when not flagged, and also for the
    /// illegal-reorder class, whose flag comes from the scheduler's
    /// legality gate instead of the verifier's fact base.
    pub violations: Vec<Violation>,
}

/// Aggregated outcome of one mutation class.
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// Class name (kebab-case, stable for machine consumption).
    pub class: String,
    /// All mutants of this class.
    pub mutants: Vec<MutantResult>,
}

impl ClassResult {
    /// Mutants the analyzer flagged.
    pub fn flagged(&self) -> usize {
        self.mutants.iter().filter(|m| m.flagged).count()
    }

    /// True when every mutant of the class was flagged.
    pub fn all_flagged(&self) -> bool {
        self.mutants.iter().all(|m| m.flagged)
    }
}

/// The full mutation-suite report.
#[derive(Debug, Clone)]
pub struct MutationReport {
    /// Per-class results.
    pub classes: Vec<ClassResult>,
}

impl MutationReport {
    /// Total mutants across classes.
    pub fn total(&self) -> usize {
        self.classes.iter().map(|c| c.mutants.len()).sum()
    }

    /// Total flagged mutants.
    pub fn flagged(&self) -> usize {
        self.classes.iter().map(ClassResult::flagged).sum()
    }

    /// True when the analyzer caught 100% of the seeded violations.
    pub fn all_flagged(&self) -> bool {
        self.classes.iter().all(ClassResult::all_flagged)
    }
}

fn int6() -> PackSpec {
    PackSpec::guarded(6, 6).expect("int6 guarded spec")
}

/// A mutable copy of a program with one op replaced.
fn with_op_replaced(program: &Program, pc: usize, op: Op) -> Program {
    let mut p = program.clone();
    p.ops[pc] = op;
    p
}

fn check_flags(
    program: &Program,
    ctx: &crate::ProgramContext,
    description: String,
) -> MutantResult {
    let (_, violations) = verify_with_context(program, ctx);
    MutantResult {
        description,
        flagged: !violations.is_empty(),
        violations,
    }
}

/// Widen every lane-extraction mask in the packed kernel by one bit.
fn guard_mask_widen() -> ClassResult {
    let spec = int6();
    let (prog, ctx) = packed_context(197, 768, 768, spec);
    let mask = spec.lane_mask();
    let mut mutants = Vec::new();
    for (pc, op) in prog.ops.iter().enumerate() {
        if let Op::And {
            d,
            a,
            b: Src::Imm(m),
        } = op
        {
            if *m == mask {
                let widened = (mask << 1) | 1;
                let mutant = with_op_replaced(
                    &prog,
                    pc,
                    Op::And {
                        d: *d,
                        a: *a,
                        b: Src::Imm(widened),
                    },
                );
                mutants.push(check_flags(
                    &mutant,
                    &ctx,
                    format!(
                        "{}: widen And mask {mask:#x} -> {widened:#x} at pc {pc}",
                        prog.name
                    ),
                ));
            }
        }
    }
    ClassResult {
        class: "guard-mask-widen".into(),
        mutants,
    }
}

/// Verify the int6 program against a claim of 7-bit operands: same lane
/// layout, one bit less guard headroom than the accumulation needs.
fn lane_widen() -> ClassResult {
    let spec = int6();
    let (prog, ctx) = packed_context(197, 768, 768, spec);
    let mut wide = spec;
    wide.bitwidth += 1;
    wide.weight_bitwidth += 1;
    let mut wide_ctx = ctx.clone();
    wide_ctx.spec = Some(wide);
    let mutant = check_flags(
        &prog,
        &wide_ctx,
        format!(
            "{}: widen operands to int{} under the int{} lane layout",
            prog.name, wide.bitwidth, spec.bitwidth
        ),
    );
    ClassResult {
        class: "lane-widen".into(),
        mutants: vec![mutant],
    }
}

/// Drop each barrier of the Tensor-core kernel in turn.
fn barrier_drop() -> ClassResult {
    let (prog, ctx) = tc_context_for_mutation(768);
    let mut mutants = Vec::new();
    for (pc, op) in prog.ops.iter().enumerate() {
        if matches!(op, Op::Bar) {
            let mutant = with_op_replaced(&prog, pc, Op::Nop);
            mutants.push(check_flags(
                &mutant,
                &ctx,
                format!("{}: drop barrier at pc {pc}", prog.name),
            ));
        }
    }
    ClassResult {
        class: "barrier-drop".into(),
        mutants,
    }
}

/// Run the paper (no-spill) policy past its safe accumulation depth.
fn deep_k() -> ClassResult {
    let spec = PackSpec::paper(6).expect("paper int6 spec");
    let (prog, ctx) = packed_context(64, 768, 256, spec);
    debug_assert!(ctx.kmax > spec.max_safe_k());
    let mutant = check_flags(
        &prog,
        &ctx,
        format!(
            "{}: paper policy at K={} past safe depth {}",
            prog.name,
            ctx.kmax,
            spec.max_safe_k()
        ),
    );
    ClassResult {
        class: "deep-k".into(),
        mutants: vec![mutant],
    }
}

/// Delete the accumulator clear that follows a lane spill.
fn spill_drop() -> ClassResult {
    let spec = int6();
    let (prog, ctx) = packed_context(197, 768, 768, spec);
    // Spill epilogues extract lanes with `and tmp, acc, lane_mask` and
    // then clear the accumulator with `mov acc, 0`. The lane mask never
    // appears before the first spill, so the first masked And anchors
    // past every prologue/task-setup `mov _, 0`.
    let mask = spec.lane_mask();
    let first_extract = prog
        .ops
        .iter()
        .position(|op| matches!(op, Op::And { b: Src::Imm(m), .. } if *m == mask))
        .unwrap_or(0);
    let mut mutants = Vec::new();
    for (pc, op) in prog.ops.iter().enumerate() {
        if pc > first_extract {
            if let Op::Mov { s: Src::Imm(0), .. } = op {
                let mutant = with_op_replaced(&prog, pc, Op::Nop);
                mutants.push(check_flags(
                    &mutant,
                    &ctx,
                    format!("{}: drop spill clear at pc {pc}", prog.name),
                ));
                // One representative per program keeps the suite fast;
                // every spill clear is structurally identical.
                break;
            }
        }
    }
    ClassResult {
        class: "spill-drop".into(),
        mutants,
    }
}

/// Seed reorders the static scheduler must reject: an adjacent RAW
/// swap (wrong value, no lane-safety violation) and a memory access
/// moved across a barrier (wrong staging interval). These mutants are
/// judged by [`vitbit_sched::validate_reorder`] — the same legality
/// gate the plan engine runs on every scheduled candidate — because an
/// illegal reorder changes *semantics* without necessarily tripping
/// the lane/hazard verifier.
fn illegal_reorder() -> ClassResult {
    let (prog, _ctx) = tc_context_for_mutation(768);
    let dec = prog.decoded();
    let swapped = |pc: usize| {
        let mut p = Program::clone(&prog);
        p.ops.swap(pc, pc + 1);
        p
    };
    let reads = |mop: &MicroOp, reg: u8| mop.srcs[..mop.n_src as usize].contains(&reg);
    let mut mutants = Vec::new();

    // RAW pair: both ops in one block, neither control, the later op
    // reading a register the earlier one writes.
    let raw_pc = (0..prog.ops.len().saturating_sub(1)).find(|&pc| {
        let (a, b) = (&dec.mops[pc], &dec.mops[pc + 1]);
        a.block == b.block
            && a.pipe != CTRL_PIPE
            && b.pipe != CTRL_PIPE
            && a.dest_count > 0
            && (a.dest_first..a.dest_first + a.dest_count).any(|r| reads(b, r))
    });
    if let Some(pc) = raw_pc {
        let mutant = swapped(pc);
        mutants.push(MutantResult {
            description: format!("{}: swap RAW pair at pc {pc},{}", prog.name, pc + 1),
            flagged: vitbit_sched::validate_reorder(&prog, &mutant).is_err(),
            violations: Vec::new(),
        });
    }

    // Memory access adjacent to a barrier, swapped across it: the
    // access lands in the other staging interval.
    let is_mem = |op: &Op| {
        matches!(
            op,
            Op::Lds { .. } | Op::Ldg { .. } | Op::LdgV4 { .. } | Op::Sts { .. } | Op::Stg { .. }
        )
    };
    let bar_pc = (0..prog.ops.len().saturating_sub(1)).find(|&pc| {
        (matches!(prog.ops[pc], Op::Bar) && is_mem(&prog.ops[pc + 1]))
            || (is_mem(&prog.ops[pc]) && matches!(prog.ops[pc + 1], Op::Bar))
    });
    if let Some(pc) = bar_pc {
        let mutant = swapped(pc);
        mutants.push(MutantResult {
            description: format!(
                "{}: move memory access across barrier at pc {pc},{}",
                prog.name,
                pc + 1
            ),
            flagged: vitbit_sched::validate_reorder(&prog, &mutant).is_err(),
            violations: Vec::new(),
        });
    }

    ClassResult {
        class: "illegal-reorder".into(),
        mutants,
    }
}

/// Runs every mutation class.
pub fn run_mutation_suite() -> MutationReport {
    MutationReport {
        classes: vec![
            guard_mask_widen(),
            lane_widen(),
            barrier_drop(),
            deep_k(),
            spill_drop(),
            illegal_reorder(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mutant_is_flagged() {
        let report = run_mutation_suite();
        assert!(report.total() >= 5, "suite must seed real mutants");
        for class in &report.classes {
            assert!(
                !class.mutants.is_empty(),
                "class {} seeded no mutants",
                class.class
            );
            for m in &class.mutants {
                assert!(
                    m.flagged,
                    "undetected mutant [{}]: {}",
                    class.class, m.description
                );
            }
        }
        assert!(report.all_flagged());
    }

    #[test]
    fn reorder_class_seeds_both_shapes() {
        let class = illegal_reorder();
        assert_eq!(
            class.mutants.len(),
            2,
            "expected a RAW-swap mutant and a barrier-crossing mutant"
        );
        assert!(class.all_flagged());
    }
}
