//! The abstract domain of the lane-safety pass: per-register unsigned
//! intervals, known-zero bitmasks, and an explicit SWAR lane structure
//! for values that came from `core::pack`.
//!
//! A register is one of:
//!
//! * a **plain** scalar — an unsigned interval `[lo, hi]` over the
//!   mathematical (pre-wraparound) value, plus a mask of bits known to
//!   be zero;
//! * a **pointer** derived from one of the kernel's operand base
//!   addresses (`A`, `B` or `C`) — address arithmetic preserves the
//!   taint, so loads and stores know which operand contract applies;
//! * a **packed** SWAR payload — `n` lanes of `lane_bits` bits each,
//!   every lane carrying its own interval. The whole-register value is
//!   exactly `Σ lanes[l] << (l * lane_bits)` as long as no lane has
//!   overflowed its budget, which is precisely the invariant the pass
//!   proves.
//!
//! Intervals are kept in `u64` so a lane or accumulator that exceeds
//! its budget is *observed* exceeding it instead of silently wrapping.

/// Which operand base pointer an address register descends from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrKind {
    /// The (transposed, biased) `A` operand.
    A,
    /// The `B` operand (packed words in the packed kernels).
    B,
    /// The output `C`.
    C,
}

/// Interval of one SWAR lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneIv {
    /// Smallest possible mathematical lane value.
    pub lo: u64,
    /// Largest possible mathematical lane value.
    pub hi: u64,
}

impl LaneIv {
    /// The constant-zero lane.
    pub const ZERO: LaneIv = LaneIv { lo: 0, hi: 0 };

    /// Interval join (union hull).
    pub fn join(self, other: LaneIv) -> LaneIv {
        LaneIv {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Shape tag of an abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// Scalar with no special structure.
    Plain,
    /// Address derived from an operand base pointer.
    Ptr(PtrKind),
    /// SWAR payload: `n` live lanes of `lane_bits` bits each, lane 0 in
    /// the low bits. Registers shifted down by whole lanes keep the tag
    /// with fewer live lanes.
    Packed {
        /// Live lane count (1..=4).
        n: u8,
        /// Bits per lane.
        lane_bits: u8,
    },
}

/// Abstract value of one register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsVal {
    /// Lower bound of the mathematical (unwrapped) value.
    pub lo: u64,
    /// Upper bound of the mathematical (unwrapped) value.
    pub hi: u64,
    /// Bits of the 32-bit register known to be zero.
    pub zeros: u32,
    /// Structure tag.
    pub tag: Tag,
    /// Per-lane intervals; only `lanes[..n]` is live for `Tag::Packed`.
    pub lanes: [LaneIv; 4],
    /// True when the value descends from a packed-lane extraction — the
    /// provenance that turns a 32-bit wraparound into a violation (wide
    /// accumulators must hold their lane sums exactly).
    pub ext: bool,
}

impl AbsVal {
    /// The unconstrained 32-bit scalar.
    pub fn top() -> Self {
        AbsVal {
            lo: 0,
            hi: u64::from(u32::MAX),
            zeros: 0,
            tag: Tag::Plain,
            lanes: [LaneIv::ZERO; 4],
            ext: false,
        }
    }

    /// The exact constant `v`.
    pub fn exact(v: u32) -> Self {
        AbsVal {
            lo: u64::from(v),
            hi: u64::from(v),
            zeros: !v,
            tag: Tag::Plain,
            lanes: [LaneIv::ZERO; 4],
            ext: false,
        }
    }

    /// A plain scalar bounded to `[lo, hi]`.
    pub fn range(lo: u64, hi: u64) -> Self {
        let zeros = if hi == 0 {
            u32::MAX
        } else if hi <= u64::from(u32::MAX) {
            // Bits at or above the highest possible set bit are zero.
            let top = 63 - hi.leading_zeros();
            if top >= 31 {
                0
            } else {
                !((1u32 << (top + 1)) - 1)
            }
        } else {
            0
        };
        AbsVal {
            lo,
            hi,
            zeros,
            tag: Tag::Plain,
            lanes: [LaneIv::ZERO; 4],
            ext: false,
        }
    }

    /// An address descending from operand pointer `kind`.
    pub fn ptr(kind: PtrKind) -> Self {
        AbsVal {
            tag: Tag::Ptr(kind),
            ..AbsVal::top()
        }
    }

    /// A packed value with `n` lanes of `lane_bits` bits, each lane
    /// independently bounded.
    pub fn packed(n: u8, lane_bits: u8, lanes: [LaneIv; 4]) -> Self {
        let mut v = AbsVal {
            lo: 0,
            hi: 0,
            zeros: 0,
            tag: Tag::Packed { n, lane_bits },
            lanes,
            ext: false,
        };
        v.recompute_packed_whole();
        v
    }

    /// Is this value an exact known constant?
    pub fn as_exact(&self) -> Option<u32> {
        if self.tag == Tag::Plain && self.lo == self.hi && self.hi <= u64::from(u32::MAX) {
            Some(self.lo as u32)
        } else {
            None
        }
    }

    /// Refresh the whole-register interval and known-zero mask of a
    /// packed value from its lane intervals.
    pub fn recompute_packed_whole(&mut self) {
        let Tag::Packed { n, lane_bits } = self.tag else {
            return;
        };
        let mut lo = 0u64;
        let mut hi = 0u64;
        let mut zeros = u32::MAX;
        for l in 0..usize::from(n) {
            let sh = u32::from(lane_bits) * l as u32;
            lo = lo.saturating_add(self.lanes[l].lo << sh);
            hi = hi.saturating_add(self.lanes[l].hi << sh);
            // A lane whose bound fits in `b` bits pins the bits above it
            // (within the lane) to zero, as long as no lane overflows.
            let lane_top = if self.lanes[l].hi == 0 {
                0
            } else {
                64 - self.lanes[l].hi.leading_zeros()
            };
            for bit in 0..u32::from(lane_bits) {
                if bit >= lane_top {
                    continue;
                }
                let abs_bit = sh + bit;
                if abs_bit < 32 {
                    zeros &= !(1u32 << abs_bit);
                }
            }
        }
        // Bits above the top live lane are zero only if the top lane
        // cannot carry past its budget; conservatively require the whole
        // value to fit.
        if hi > u64::from(u32::MAX) {
            zeros = 0;
        }
        self.lo = lo;
        self.hi = hi;
        self.zeros = zeros;
    }

    /// Join (union hull) of two abstract values. Mismatched structure
    /// degrades to a plain interval.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        if self == other {
            return *self;
        }
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let zeros = self.zeros & other.zeros;
        match (self.tag, other.tag) {
            (
                Tag::Packed {
                    n: n1,
                    lane_bits: w1,
                },
                Tag::Packed {
                    n: n2,
                    lane_bits: w2,
                },
            ) if n1 == n2 && w1 == w2 => {
                let mut lanes = [LaneIv::ZERO; 4];
                for (l, slot) in lanes.iter_mut().enumerate().take(usize::from(n1)) {
                    *slot = self.lanes[l].join(other.lanes[l]);
                }
                let mut v = AbsVal::packed(n1, w1, lanes);
                v.ext = self.ext || other.ext;
                v
            }
            (Tag::Ptr(k1), Tag::Ptr(k2)) if k1 == k2 => AbsVal {
                lo,
                hi,
                zeros,
                tag: Tag::Ptr(k1),
                lanes: [LaneIv::ZERO; 4],
                ext: false,
            },
            _ => AbsVal {
                lo,
                hi,
                zeros,
                tag: Tag::Plain,
                lanes: [LaneIv::ZERO; 4],
                ext: self.ext || other.ext,
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn exact_tracks_zeros() {
        let v = AbsVal::exact(0b1010);
        assert_eq!(v.as_exact(), Some(10));
        assert_eq!(v.zeros & 0b0101, 0b0101);
    }

    #[test]
    fn packed_whole_is_lane_sum() {
        let mut lanes = [LaneIv::ZERO; 4];
        lanes[0] = LaneIv { lo: 1, hi: 3 };
        lanes[1] = LaneIv { lo: 0, hi: 63 };
        let v = AbsVal::packed(2, 16, lanes);
        assert_eq!(v.lo, 1);
        assert_eq!(v.hi, 3 + (63 << 16));
        // Guard bits of lane 0 (bits 6..16) are known zero.
        assert_eq!(v.zeros & (0x3ff << 6), 0x3ff << 6);
    }

    #[test]
    fn join_of_mismatched_structure_is_plain() {
        let a = AbsVal::ptr(PtrKind::A);
        let b = AbsVal::exact(4);
        assert_eq!(a.join(&b).tag, Tag::Plain);
    }
}
