//! Sweep verifier: statically proves lane-safety and shared-memory
//! hazard-freedom for every shipped kernel builder across all Table-3
//! strategies x INT{4,6,8} x the ViT-Base linear shapes, then (with
//! `--mutate`, or always in CI) runs the mutation self-test.
//!
//! Output is a JSON report on stdout; the exit code is nonzero when any
//! proof fails or any seeded mutant goes undetected.
//!
//! `--pressure` switches to the register-pressure reporter: every
//! distinct program the sweep emits is analyzed with
//! `vitbit_sched::pressure_report` and dumped as one JSON row
//! (max-live registers/predicates plus the live-count histogram).

use vitbit_core::policy::PackSpec;
use vitbit_plan::Strategy;
use vitbit_verify::{
    contexts_for_desc, mutate, packed_context, sweep_desc, tc_role_context, verify_desc,
    verify_with_context, VIT_BASE_SHAPES,
};

/// One sweep row, already rendered to JSON fields.
struct Row {
    subject: String,
    ok: bool,
    programs: usize,
    detail: Vec<String>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn row_json(r: &Row) -> String {
    let detail = r
        .detail
        .iter()
        .map(|d| format!("\"{}\"", json_escape(d)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "    {{\"subject\": \"{}\", \"ok\": {}, \"programs\": {}, \"violations\": [{}]}}",
        json_escape(&r.subject),
        r.ok,
        r.programs,
        detail
    )
}

fn sweep() -> Vec<Row> {
    let mut rows = Vec::new();
    for bits in [4u32, 6, 8] {
        let spec = PackSpec::guarded(bits, bits).expect("guarded spec for swept bitwidth");
        for (layer, m, k, n) in VIT_BASE_SHAPES {
            for strategy in Strategy::ALL {
                let desc = sweep_desc(strategy, spec, m, k, n);
                let subject = format!("{layer} int{bits} {}", strategy.name());
                match verify_desc(&desc) {
                    Ok(report) => rows.push(Row {
                        subject,
                        ok: true,
                        programs: report.programs.len(),
                        detail: Vec::new(),
                    }),
                    Err(violations) => rows.push(Row {
                        subject,
                        ok: false,
                        programs: 0,
                        detail: violations.iter().map(ToString::to_string).collect(),
                    }),
                }
            }
            // Builder-direct rows the strategies do not reach: the
            // standalone packed kernel and the fused-role TC variant.
            for (prog, ctx) in [packed_context(m, k, n, spec), tc_role_context(k)] {
                let (_, violations) = verify_with_context(&prog, &ctx);
                rows.push(Row {
                    subject: format!("{layer} int{bits} builder:{}", ctx.name),
                    ok: violations.is_empty(),
                    programs: 1,
                    detail: violations.iter().map(ToString::to_string).collect(),
                });
            }
        }
    }
    rows
}

/// Register-pressure report over every distinct program the sweep
/// emits. Dedup is by (name, op count, register-file size, op stream):
/// most subjects share programs, so the row count stays far below the
/// subject count.
fn pressure_report() -> String {
    use std::collections::HashSet;
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut seen = HashSet::new();
    let mut rows = Vec::new();
    let mut subjects = 0usize;
    let mut max_live = 0u32;
    let mut analyze = |prog: &vitbit_sim::Program| {
        let mut h = DefaultHasher::new();
        prog.name.hash(&mut h);
        prog.nregs.hash(&mut h);
        format!("{:?}", prog.ops).hash(&mut h);
        if seen.insert(h.finish()) {
            let report = vitbit_sched::pressure_report(prog);
            max_live = max_live.max(report.max_live_regs);
            rows.push(format!("    {}", report.to_json()));
        }
    };
    for bits in [4u32, 6, 8] {
        let spec = PackSpec::guarded(bits, bits).expect("guarded spec for swept bitwidth");
        for (_, m, k, n) in VIT_BASE_SHAPES {
            for strategy in Strategy::ALL {
                subjects += 1;
                for (prog, _) in contexts_for_desc(&sweep_desc(strategy, spec, m, k, n)) {
                    analyze(&prog);
                }
            }
            for prog in [packed_context(m, k, n, spec).0, tc_role_context(k).0] {
                subjects += 1;
                analyze(&prog);
            }
        }
    }
    format!(
        "{{\n  \"subjects\": {},\n  \"programs\": {},\n  \"max_live_regs\": {},\n  \"pressure\": [\n{}\n  ]\n}}",
        subjects,
        rows.len(),
        max_live,
        rows.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_mutation = args.iter().any(|a| a == "--mutate");
    let mutate_only = args.iter().any(|a| a == "--mutate-only");
    if args.iter().any(|a| a == "--pressure") {
        println!("{}", pressure_report());
        return;
    }

    let rows = if mutate_only { Vec::new() } else { sweep() };
    let proved = rows.iter().filter(|r| r.ok).count();
    let mut failed = rows.len() - proved;

    let mut mutation_json = String::from("null");
    if run_mutation || mutate_only {
        let report = mutate::run_mutation_suite();
        let classes = report
            .classes
            .iter()
            .map(|c| {
                format!(
                    "    {{\"class\": \"{}\", \"mutants\": {}, \"flagged\": {}}}",
                    json_escape(&c.class),
                    c.mutants.len(),
                    c.flagged()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        mutation_json = format!(
            "{{\"total\": {}, \"flagged\": {}, \"all_flagged\": {}, \"classes\": [\n{}\n  ]}}",
            report.total(),
            report.flagged(),
            report.all_flagged(),
            classes
        );
        if !report.all_flagged() {
            failed += report.total() - report.flagged();
        }
    }

    let rows_json = rows.iter().map(row_json).collect::<Vec<_>>().join(",\n");
    println!("{{");
    println!("  \"swept\": {},", rows.len());
    println!("  \"proved\": {proved},");
    println!("  \"failed\": {failed},");
    println!("  \"results\": [\n{rows_json}\n  ],");
    println!("  \"mutation\": {mutation_json}");
    println!("}}");

    if failed > 0 {
        eprintln!("verify-kernels: {failed} failure(s)");
        std::process::exit(1);
    }
}
