//! The VitBit packing policy (paper Figure 3) and its guarded refinement.
//!
//! A [`PackSpec`] fixes, for one GEMM-like operation, how many `b`-bit input
//! values share a 32-bit register, how wide each lane is, and for how many
//! multiply-accumulate steps the packed accumulator may run before its lanes
//! must be spilled into full-width accumulators.
//!
//! Figure 3 of the paper assigns lane counts purely from the value bitwidth:
//!
//! | value bitwidth | values per register | lane width |
//! |---|---|---|
//! | 9..=32 | 1 (zero-masking) | 32 |
//! | 6..=8  | 2 | 16 |
//! | 5      | 3 | 10 |
//! | 1..=4  | 4 | 8 |
//!
//! The paper's policy reserves exactly `2b` bits per product and no headroom
//! for accumulation. The **guarded** policy keeps Figure 3's lane count but
//! computes the number of accumulations that provably fit
//! ([`PackSpec::chunk_len`]); the packed GEMM kernels spill lanes at that
//! period, which preserves exactness for any dot-product length.

use crate::error::PackError;

/// Which overflow discipline a [`PackSpec`] follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackPolicy {
    /// Figure 3 verbatim: no guard bits, no spilling. Exact only while the
    /// running lane sums fit (`k <= max_safe_k`); wraps silently beyond,
    /// like the hardware would.
    Paper,
    /// Same lane count, but packed accumulation is broken into chunks of
    /// `chunk_len` steps with lane spills in between; exact for every `k`.
    Guarded,
}

/// A complete packing configuration for one operand pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackSpec {
    /// Bitwidth of the packed values (the input matrix B side).
    pub bitwidth: u32,
    /// Bitwidth of the scalar multiplier (the weight matrix A side).
    pub weight_bitwidth: u32,
    /// Values packed per 32-bit register (`n` in the paper).
    pub lanes: u32,
    /// Width in bits of each lane.
    pub lane_bits: u32,
    /// Overflow discipline.
    pub policy: PackPolicy,
}

/// Figure 3 lane count for a value bitwidth.
///
/// # Errors
/// Returns [`PackError::InvalidBitwidth`] outside `1..=32`.
pub fn lanes_for_bitwidth(bitwidth: u32) -> Result<u32, PackError> {
    match bitwidth {
        9..=32 => Ok(1),
        6..=8 => Ok(2),
        5 => Ok(3),
        1..=4 => Ok(4),
        _ => Err(PackError::InvalidBitwidth(bitwidth)),
    }
}

impl PackSpec {
    /// The paper's Figure-3 policy for `bitwidth`-bit values multiplied by
    /// weights of the same bitwidth.
    ///
    /// # Errors
    /// Propagates [`PackError::InvalidBitwidth`].
    pub fn paper(bitwidth: u32) -> Result<Self, PackError> {
        let lanes = lanes_for_bitwidth(bitwidth)?;
        Ok(Self {
            bitwidth,
            weight_bitwidth: bitwidth,
            lanes,
            lane_bits: 32 / lanes,
            policy: PackPolicy::Paper,
        })
    }

    /// Guarded policy: Figure 3's lane count, spilling often enough that
    /// packed accumulation is exact for any dot-product length.
    ///
    /// # Errors
    /// [`PackError::InvalidBitwidth`] for bad widths, or
    /// [`PackError::NoFeasibleLanes`] when even a single product of these
    /// operand widths cannot fit a lane (the kernel must fall back to
    /// zero-masking, i.e. `lanes == 1`).
    pub fn guarded(bitwidth: u32, weight_bitwidth: u32) -> Result<Self, PackError> {
        if !(1..=32).contains(&weight_bitwidth) {
            return Err(PackError::InvalidBitwidth(weight_bitwidth));
        }
        let lanes = lanes_for_bitwidth(bitwidth)?;
        let spec = Self {
            bitwidth,
            weight_bitwidth,
            lanes,
            lane_bits: 32 / lanes,
            policy: PackPolicy::Guarded,
        };
        if lanes > 1 && spec.chunk_len() == 0 {
            return Err(PackError::NoFeasibleLanes {
                bitwidth,
                weight_bitwidth,
            });
        }
        Ok(spec)
    }

    /// Zero-masking fallback: one value per register (used for bitwidths
    /// of 9 or more, Figure 3(a), and as the non-packed baseline).
    pub fn masked(bitwidth: u32) -> Self {
        Self {
            bitwidth,
            weight_bitwidth: bitwidth,
            lanes: 1,
            lane_bits: 32,
            policy: PackPolicy::Guarded,
        }
    }

    /// Maximum biased (unsigned) code of a packed value: `2^b - 1`.
    #[inline]
    pub fn max_value_code(&self) -> u32 {
        if self.bitwidth >= 32 {
            u32::MAX
        } else {
            (1u32 << self.bitwidth) - 1
        }
    }

    /// Maximum biased (unsigned) code of a weight: `2^w - 1`.
    #[inline]
    pub fn max_weight_code(&self) -> u32 {
        if self.weight_bitwidth >= 32 {
            u32::MAX
        } else {
            (1u32 << self.weight_bitwidth) - 1
        }
    }

    /// Largest single lane product under this spec.
    #[inline]
    pub fn max_lane_product(&self) -> u64 {
        u64::from(self.max_value_code()) * u64::from(self.max_weight_code())
    }

    /// How many multiply-accumulate steps a packed accumulator can absorb
    /// before a lane could overflow, assuming worst-case operands.
    ///
    /// Returns 0 when a *single* product already overflows the lane (the
    /// spec is infeasible for multi-lane use); `u32::MAX` for the unpacked
    /// (`lanes == 1`) case where the 32-bit accumulator discipline of the
    /// surrounding kernel applies instead.
    pub fn chunk_len(&self) -> u32 {
        if self.lanes == 1 {
            return u32::MAX;
        }
        let lane_cap = (1u64 << self.lane_bits) - 1;
        let per_step = self.max_lane_product();
        if per_step == 0 {
            return u32::MAX;
        }
        u64::min(lane_cap / per_step, u64::from(u32::MAX)) as u32
    }

    /// Longest dot product for which the **paper** policy stays exact with
    /// worst-case operands. Identical to [`Self::chunk_len`]; named for use
    /// in feasibility reporting.
    pub fn max_safe_k(&self) -> u32 {
        self.chunk_len()
    }

    /// Bit position of lane `lane` (0 = least significant lane).
    ///
    /// Algorithm 1 places element `i*n + p` at shift
    /// `bitwidth * (n - (p+1))`; lane index here counts from the least
    /// significant lane, so lane `l` sits at `l * lane_bits`.
    #[inline]
    pub fn lane_shift(&self, lane: u32) -> u32 {
        debug_assert!(lane < self.lanes);
        lane * self.lane_bits
    }

    /// Mask selecting one lane.
    #[inline]
    pub fn lane_mask(&self) -> u32 {
        if self.lane_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.lane_bits) - 1
        }
    }

    /// Bias added to signed codes to make lanes non-negative: `2^(b-1)`.
    #[inline]
    pub fn value_bias(&self) -> i32 {
        1i32 << (self.bitwidth - 1)
    }

    /// Bias added to signed weight codes: `2^(w-1)`.
    #[inline]
    pub fn weight_bias(&self) -> i32 {
        1i32 << (self.weight_bitwidth - 1)
    }

    /// Estimated INT-pipe instructions per multiply-accumulate under this
    /// spec, modelling `chunk_len` packed IMADs followed by two spill
    /// instructions per lane (extract + add). The unpacked baseline is 1.
    ///
    /// This is the quantity that drives Equation 1's load balance and the
    /// Figure-9 instruction-count reduction.
    pub fn inst_per_mac(&self) -> f64 {
        if self.lanes == 1 {
            return 1.0;
        }
        match self.policy {
            PackPolicy::Paper => 1.0 / f64::from(self.lanes),
            PackPolicy::Guarded => {
                let s = f64::from(self.chunk_len().max(1));
                let spill = 2.0 * f64::from(self.lanes);
                (s + spill) / (s * f64::from(self.lanes))
            }
        }
    }

    /// Effective packing speedup on INT math instructions
    /// (`1 / inst_per_mac`); the paper's idealized value is `lanes`.
    pub fn packing_gain(&self) -> f64 {
        1.0 / self.inst_per_mac()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_lane_counts() {
        assert_eq!(lanes_for_bitwidth(32).unwrap(), 1);
        assert_eq!(lanes_for_bitwidth(9).unwrap(), 1);
        assert_eq!(lanes_for_bitwidth(8).unwrap(), 2);
        assert_eq!(lanes_for_bitwidth(7).unwrap(), 2);
        assert_eq!(lanes_for_bitwidth(6).unwrap(), 2);
        assert_eq!(lanes_for_bitwidth(5).unwrap(), 3);
        assert_eq!(lanes_for_bitwidth(4).unwrap(), 4);
        assert_eq!(lanes_for_bitwidth(1).unwrap(), 4);
        assert!(lanes_for_bitwidth(0).is_err());
        assert!(lanes_for_bitwidth(33).is_err());
    }

    #[test]
    fn paper_spec_lane_geometry() {
        let s8 = PackSpec::paper(8).unwrap();
        assert_eq!((s8.lanes, s8.lane_bits), (2, 16));
        let s5 = PackSpec::paper(5).unwrap();
        assert_eq!((s5.lanes, s5.lane_bits), (3, 10));
        let s4 = PackSpec::paper(4).unwrap();
        assert_eq!((s4.lanes, s4.lane_bits), (4, 8));
        let s16 = PackSpec::paper(16).unwrap();
        assert_eq!((s16.lanes, s16.lane_bits), (1, 32));
    }

    #[test]
    fn chunk_lengths_match_hand_math() {
        // b=w=8: product up to 255*255=65025, lane 16 bits -> 1 step.
        assert_eq!(PackSpec::guarded(8, 8).unwrap().chunk_len(), 1);
        // b=w=6: 63*63=3969, cap 65535 -> 16 steps.
        assert_eq!(PackSpec::guarded(6, 6).unwrap().chunk_len(), 16);
        // b=6, w=8: 63*255=16065 -> 4 steps.
        assert_eq!(PackSpec::guarded(6, 8).unwrap().chunk_len(), 4);
        // b=w=5: 31*31=961, cap 1023 -> 1 step.
        assert_eq!(PackSpec::guarded(5, 5).unwrap().chunk_len(), 1);
        // b=w=4: 15*15=225, cap 255 -> 1 step.
        assert_eq!(PackSpec::guarded(4, 4).unwrap().chunk_len(), 1);
        // b=4, w=2: 15*3=45, cap 255 -> 5 steps.
        assert_eq!(PackSpec::guarded(4, 2).unwrap().chunk_len(), 5);
    }

    #[test]
    fn guarded_rejects_overflowing_single_products() {
        // b=5 (3 lanes of 10 bits), w=8: 31*255=7905 > 1023.
        assert_eq!(
            PackSpec::guarded(5, 8).unwrap_err(),
            PackError::NoFeasibleLanes {
                bitwidth: 5,
                weight_bitwidth: 8
            }
        );
    }

    #[test]
    fn masked_spec_is_single_lane() {
        let s = PackSpec::masked(8);
        assert_eq!(s.lanes, 1);
        assert_eq!(s.chunk_len(), u32::MAX);
        assert_eq!(s.inst_per_mac(), 1.0);
    }

    #[test]
    fn lane_shift_and_mask() {
        let s = PackSpec::paper(8).unwrap();
        assert_eq!(s.lane_shift(0), 0);
        assert_eq!(s.lane_shift(1), 16);
        assert_eq!(s.lane_mask(), 0xFFFF);
        let s5 = PackSpec::paper(5).unwrap();
        assert_eq!(s5.lane_shift(2), 20);
        assert_eq!(s5.lane_mask(), 0x3FF);
    }

    #[test]
    fn biases_are_half_ranges() {
        let s = PackSpec::guarded(6, 8).unwrap();
        assert_eq!(s.value_bias(), 32);
        assert_eq!(s.weight_bias(), 128);
    }

    #[test]
    fn paper_policy_inst_per_mac_is_reciprocal_lanes() {
        assert_eq!(PackSpec::paper(8).unwrap().inst_per_mac(), 0.5);
        assert_eq!(PackSpec::paper(4).unwrap().inst_per_mac(), 0.25);
    }

    #[test]
    fn guarded_gain_for_int6_is_substantial() {
        // S=16, lanes=2: (16+4)/(16*2) = 0.625 insts/MAC -> 1.6x gain.
        let s = PackSpec::guarded(6, 6).unwrap();
        assert!((s.inst_per_mac() - 0.625).abs() < 1e-12);
        assert!((s.packing_gain() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn guarded_int8_has_no_gain_but_is_exact() {
        // S=1: (1+4)/2 = 2.5 insts/MAC -- packing INT8 with guards costs
        // more instructions than zero-masking; the harness reports this.
        let s = PackSpec::guarded(8, 8).unwrap();
        assert!(s.inst_per_mac() > 1.0);
    }

    #[test]
    fn max_safe_k_equals_chunk_len() {
        for &(b, w) in &[(6u32, 6u32), (8, 8), (4, 4), (6, 8)] {
            let s = PackSpec::guarded(b, w).unwrap();
            assert_eq!(s.max_safe_k(), s.chunk_len());
        }
    }

    // Figure 3 boundary: 4 bits is the last width with 4 lanes; one more
    // bit drops to 3 lanes and widens each lane from 8 to 10 bits.
    #[test]
    fn figure3_boundary_4_to_5_bits() {
        let s4 = PackSpec::guarded(4, 4).unwrap();
        let s5 = PackSpec::guarded(5, 5).unwrap();
        assert_eq!((s4.lanes, s4.lane_bits), (4, 8));
        assert_eq!((s5.lanes, s5.lane_bits), (3, 10));
        // Max-K safe depth on either side: 15^2=225 of cap 255 -> 1 step;
        // 31^2=961 of cap 1023 -> 1 step. Neither width survives a second
        // worst-case MAC without a spill.
        assert_eq!(s4.max_safe_k(), 255 / (15 * 15));
        assert_eq!(s4.max_safe_k(), 1);
        assert_eq!(s5.max_safe_k(), 1023 / (31 * 31));
        assert_eq!(s5.max_safe_k(), 1);
    }

    // Figure 3 boundary: 5 bits is the only 3-lane width; 6 bits drops to
    // 2 lanes — and the wider 16-bit lane makes the *deeper* accumulation
    // safe (guard headroom grows faster than the products).
    #[test]
    fn figure3_boundary_5_to_6_bits() {
        let s5 = PackSpec::guarded(5, 5).unwrap();
        let s6 = PackSpec::guarded(6, 6).unwrap();
        assert_eq!((s5.lanes, s5.lane_bits), (3, 10));
        assert_eq!((s6.lanes, s6.lane_bits), (2, 16));
        assert_eq!(s5.max_safe_k(), 1);
        assert_eq!(s6.max_safe_k(), 65535 / (63 * 63));
        assert_eq!(s6.max_safe_k(), 16);
    }

    // Figure 3 boundary: 8 bits is the last packed width; 9 bits falls to
    // a single lane — the zero-masking path, where the 32-bit accumulator
    // discipline of the surrounding kernel applies and the packed-lane
    // depth bound disappears.
    #[test]
    fn figure3_boundary_8_to_9_bits() {
        let s8 = PackSpec::guarded(8, 8).unwrap();
        let s9 = PackSpec::guarded(9, 9).unwrap();
        assert_eq!((s8.lanes, s8.lane_bits), (2, 16));
        assert_eq!((s9.lanes, s9.lane_bits), (1, 32));
        assert_eq!(s8.max_safe_k(), 65535 / (255 * 255));
        assert_eq!(s8.max_safe_k(), 1);
        assert_eq!(s9.max_safe_k(), u32::MAX, "single lane: no packed bound");
        assert_eq!(s9.lane_mask(), u32::MAX);
        // The masked (explicit zero-masking) spec agrees with the 1-lane
        // guarded geometry.
        let m9 = PackSpec::masked(9);
        assert_eq!((m9.lanes, m9.lane_bits), (1, 32));
        assert_eq!(m9.max_safe_k(), u32::MAX);
    }

    // The paper (no-spill) policy shares the lane geometry at every
    // boundary, so its exactness window is the same chunk length.
    #[test]
    fn paper_policy_max_safe_k_at_each_boundary_width() {
        for (b, want) in [(4u32, 1u32), (5, 1), (6, 16), (8, 1), (9, u32::MAX)] {
            let s = PackSpec::paper(b).unwrap();
            assert_eq!(s.max_safe_k(), want, "paper({b})");
        }
    }
}
