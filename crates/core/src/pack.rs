//! Biased-code encoding and lane packing.
//!
//! Signed `b`-bit codes are stored in lanes as *biased* (excess-`2^(b-1)`)
//! unsigned values so that SWAR products never sign-extend across lane
//! boundaries. Algorithm 1 in the paper packs element `i*n + p` at bit
//! offset `bitwidth * (n - (p+1))`; equivalently, within one register the
//! *first* of the `n` consecutive values occupies the most significant lane.
//! We keep that ordering.

use crate::error::PackError;
use crate::policy::PackSpec;
use vitbit_tensor::Matrix;

/// Encodes a signed code into its biased lane representation.
///
/// # Errors
/// [`PackError::CodeOutOfRange`] when `v` exceeds the signed `b`-bit range.
#[inline]
pub fn encode_biased(v: i32, spec: &PackSpec) -> Result<u32, PackError> {
    let bias = spec.value_bias();
    let lo = -bias;
    let hi = bias - 1;
    if v < lo || v > hi {
        return Err(PackError::CodeOutOfRange {
            value: v,
            bitwidth: spec.bitwidth,
        });
    }
    Ok((v + bias) as u32)
}

/// Inverse of [`encode_biased`].
#[inline]
pub fn decode_biased(code: u32, spec: &PackSpec) -> i32 {
    code as i32 - spec.value_bias()
}

/// Encodes a signed *weight* code into biased form.
///
/// # Errors
/// [`PackError::CodeOutOfRange`] when `w` exceeds the signed range.
#[inline]
pub fn encode_weight_biased(w: i32, spec: &PackSpec) -> Result<u32, PackError> {
    let bias = spec.weight_bias();
    if w < -bias || w > bias - 1 {
        return Err(PackError::CodeOutOfRange {
            value: w,
            bitwidth: spec.weight_bitwidth,
        });
    }
    Ok((w + bias) as u32)
}

/// Packs a slice of signed codes into registers, `spec.lanes` per register.
///
/// Element `i*n + p` of the slice lands in the `(n-1-p)`-th lane (most
/// significant lane first), matching Algorithm 1's shift placement.
///
/// # Errors
/// * [`PackError::LengthNotLaneMultiple`] unless `codes.len() % lanes == 0`;
/// * [`PackError::CodeOutOfRange`] for any out-of-range code.
pub fn pack_codes(codes: &[i8], spec: &PackSpec) -> Result<Vec<u32>, PackError> {
    let n = spec.lanes as usize;
    if !codes.len().is_multiple_of(n) {
        return Err(PackError::LengthNotLaneMultiple {
            len: codes.len(),
            lanes: spec.lanes,
        });
    }
    let mut out = Vec::with_capacity(codes.len() / n);
    for group in codes.chunks_exact(n) {
        let mut reg = 0u32;
        for (p, &v) in group.iter().enumerate() {
            let lane = spec.lanes - 1 - p as u32;
            reg |= encode_biased(i32::from(v), spec)? << spec.lane_shift(lane);
        }
        out.push(reg);
    }
    Ok(out)
}

/// Unpacks registers back into signed codes (inverse of [`pack_codes`]).
pub fn unpack_codes(regs: &[u32], spec: &PackSpec) -> Vec<i8> {
    let n = spec.lanes as usize;
    let mut out = Vec::with_capacity(regs.len() * n);
    for &reg in regs {
        for p in 0..n {
            let lane = spec.lanes - 1 - p as u32;
            let code = (reg >> spec.lane_shift(lane)) & spec.lane_mask();
            out.push(decode_biased(code, spec) as i8);
        }
    }
    out
}

/// Extracts the biased lane values of one register, most significant lane
/// (i.e. first packed element) first.
pub fn lanes_of(reg: u32, spec: &PackSpec) -> Vec<u32> {
    (0..spec.lanes)
        .rev()
        .map(|lane| (reg >> spec.lane_shift(lane)) & spec.lane_mask())
        .collect()
}

/// Packs a `K x N1` signed matrix row-wise into a `K x (N1/lanes)` register
/// matrix: each row's consecutive `lanes` columns share a register. This is
/// the layout the packed-INT GEMM consumes (values that multiply the same
/// weight element sit in one register).
///
/// # Errors
/// Propagates [`pack_codes`] errors (width must be a lane multiple).
pub fn pack_matrix_rows(b1: &Matrix<i8>, spec: &PackSpec) -> Result<Matrix<u32>, PackError> {
    let n = spec.lanes as usize;
    if !b1.cols().is_multiple_of(n) {
        return Err(PackError::LengthNotLaneMultiple {
            len: b1.cols(),
            lanes: spec.lanes,
        });
    }
    let packed_cols = b1.cols() / n;
    let mut data = Vec::with_capacity(b1.rows() * packed_cols);
    for r in 0..b1.rows() {
        data.extend(pack_codes(b1.row(r), spec)?);
    }
    Ok(Matrix::from_vec(b1.rows(), packed_cols, data))
}

/// Inverse of [`pack_matrix_rows`].
pub fn unpack_matrix_rows(packed: &Matrix<u32>, spec: &PackSpec) -> Matrix<i8> {
    let n = spec.lanes as usize;
    let mut data = Vec::with_capacity(packed.len() * n);
    for r in 0..packed.rows() {
        data.extend(unpack_codes(packed.row(r), spec));
    }
    Matrix::from_vec(packed.rows(), packed.cols() * n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitbit_tensor::check;

    fn spec6() -> PackSpec {
        PackSpec::guarded(6, 6).unwrap()
    }

    #[test]
    fn encode_decode_round_trip_all_values() {
        let spec = spec6();
        for v in -32..=31 {
            let code = encode_biased(v, &spec).unwrap();
            assert!(code <= 63);
            assert_eq!(decode_biased(code, &spec), v);
        }
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let spec = spec6();
        assert!(encode_biased(32, &spec).is_err());
        assert!(encode_biased(-33, &spec).is_err());
    }

    #[test]
    fn pack_places_first_value_in_high_lane() {
        let spec = PackSpec::paper(8).unwrap(); // 2 lanes of 16 bits
                                                // codes 1 and 2 -> biased 129, 130; first element in upper lane.
        let regs = pack_codes(&[1, 2], &spec).unwrap();
        assert_eq!(regs, vec![(129 << 16) | 130]);
    }

    #[test]
    fn pack_rejects_non_multiple_length() {
        let spec = spec6();
        assert_eq!(
            pack_codes(&[1, 2, 3], &spec).unwrap_err(),
            PackError::LengthNotLaneMultiple { len: 3, lanes: 2 }
        );
    }

    #[test]
    fn four_lane_packing_layout() {
        let spec = PackSpec::paper(4).unwrap(); // 4 lanes of 8 bits
        let regs = pack_codes(&[-8, 0, 3, 7], &spec).unwrap();
        // biased: 0, 8, 11, 15; first element highest lane.
        assert_eq!(regs, vec![(11 << 8) | 15 | (8 << 16)]);
        assert_eq!(unpack_codes(&regs, &spec), vec![-8, 0, 3, 7]);
    }

    #[test]
    fn lanes_of_returns_msb_first() {
        let spec = PackSpec::paper(8).unwrap();
        let reg = (200u32 << 16) | 7;
        assert_eq!(lanes_of(reg, &spec), vec![200, 7]);
    }

    #[test]
    fn matrix_round_trip() {
        let spec = spec6();
        let m = Matrix::from_fn(5, 8, |r, c| ((r as i32 * 8 + c as i32) % 60 - 30) as i8);
        let packed = pack_matrix_rows(&m, &spec).unwrap();
        assert_eq!(packed.shape(), (5, 4));
        assert_eq!(unpack_matrix_rows(&packed, &spec), m);
    }

    #[test]
    fn matrix_pack_needs_lane_multiple_width() {
        let spec = spec6();
        let m: Matrix<i8> = Matrix::zeros(3, 5);
        assert!(pack_matrix_rows(&m, &spec).is_err());
    }

    // Figure 3 boundary layouts: the same 4 codes pack into 1 register at
    // 4 bits (4 lanes), need 3-lane registers at 5 bits, 2-lane registers
    // at 6 bits, and a full register each on the 9-bit zero-masking path.
    #[test]
    fn boundary_4_to_5_bits_changes_register_count() {
        let s4 = PackSpec::paper(4).unwrap();
        let s5 = PackSpec::paper(5).unwrap();
        assert_eq!(pack_codes(&[-8, -1, 0, 7], &s4).unwrap().len(), 1);
        // 5 bits: 3 lanes — 4 codes is not a lane multiple any more...
        assert!(pack_codes(&[-8, -1, 0, 7], &s5).is_err());
        // ...but 6 codes fill exactly 2 registers of 10-bit lanes.
        let regs = pack_codes(&[-16, -1, 0, 1, 8, 15], &s5).unwrap();
        assert_eq!(regs.len(), 2);
        assert_eq!(unpack_codes(&regs, &s5), vec![-16, -1, 0, 1, 8, 15]);
    }

    #[test]
    fn boundary_5_to_6_bits_changes_lane_geometry() {
        let s5 = PackSpec::paper(5).unwrap();
        let s6 = PackSpec::paper(6).unwrap();
        // 5-bit: first element in the most significant of 3 ten-bit lanes.
        let r5 = pack_codes(&[1, 2, 3], &s5).unwrap()[0];
        assert_eq!(r5, (17 << 20) | (18 << 10) | 19); // biased by 16
        assert_eq!(lanes_of(r5, &s5), vec![17, 18, 19]);
        // 6-bit: two 16-bit lanes, biased by 32.
        let r6 = pack_codes(&[1, 2], &s6).unwrap()[0];
        assert_eq!(r6, (33 << 16) | 34);
        assert_eq!(lanes_of(r6, &s6), vec![33, 34]);
    }

    #[test]
    fn boundary_9_bit_zero_masking_is_one_code_per_register() {
        // 9 bits exceeds every packed geometry: one 32-bit lane, biased by
        // 256, so any i8 code round-trips through a whole register.
        let s9 = PackSpec::masked(9);
        assert_eq!(s9.lanes, 1);
        let codes: Vec<i8> = vec![-128, -1, 0, 1, 127];
        let regs = pack_codes(&codes, &s9).unwrap();
        assert_eq!(regs.len(), codes.len());
        assert_eq!(regs[0], 128); // -128 + bias 256
        assert_eq!(unpack_codes(&regs, &s9), codes);
        // The zero-masking spec has no packed depth bound to respect.
        assert_eq!(s9.max_safe_k(), u32::MAX);
    }

    #[test]
    fn prop_pack_unpack_round_trip() {
        check::cases(0x9ac4_0001, 256, |rng| {
            let bitwidth = rng.random_range(1u32..=8);
            let values = check::vec_of(rng, 0..64, |r| r.random_range(-128i16..=127));
            let spec = PackSpec::paper(bitwidth).unwrap();
            let bias = spec.value_bias();
            // Clamp into range, truncate to a lane multiple.
            let n = spec.lanes as usize;
            let len = values.len() / n * n;
            let codes: Vec<i8> = values[..len]
                .iter()
                .map(|&v| (i32::from(v).clamp(-bias, bias - 1)) as i8)
                .collect();
            let packed = pack_codes(&codes, &spec).unwrap();
            assert_eq!(unpack_codes(&packed, &spec), codes);
        });
    }

    #[test]
    fn prop_lanes_never_collide() {
        check::cases(0x9ac4_0002, 256, |rng| {
            let bitwidth = rng.random_range(1u32..=8);
            let seed_vals: Vec<u32> = (0..4).map(|_| rng.random_range(0u32..256)).collect();
            let spec = PackSpec::paper(bitwidth).unwrap();
            let n = spec.lanes as usize;
            let codes: Vec<i8> = (0..n)
                .map(|i| {
                    let bias = spec.value_bias();
                    ((seed_vals[i % seed_vals.len()] % (2 * bias as u32)) as i32 - bias) as i8
                })
                .collect();
            let reg = pack_codes(&codes, &spec).unwrap()[0];
            // Reconstructing lane-by-lane must match the original codes.
            let lanes = lanes_of(reg, &spec);
            for (p, &c) in codes.iter().enumerate() {
                assert_eq!(decode_biased(lanes[p], &spec), i32::from(c));
            }
        });
    }
}
