//! Bias (zero-point) correction for biased-lane SWAR dot products.
//!
//! With biased codes `a' = a + Za` and `b' = b + Zb`, a length-`K` dot
//! product satisfies
//!
//! ```text
//! sum(a' * b') = sum(a*b) + Zb * sum(a) + Za * sum(b) + K * Za * Zb
//! ```
//!
//! so the true signed result is recovered from the biased lane sum with one
//! constant per (output row, output column) pair:
//!
//! ```text
//! C[i][j] = S[i][j] - Zb * rowsum_A[i] - Za * colsum_B[j] - K * Za * Zb
//! ```
//!
//! `rowsum_A` is computed once per weight matrix (setup time, like the
//! paper's one-off weight conversion); `colsum_B` is computed during input
//! preprocessing. Neither touches the GEMM inner loop, preserving the
//! paper's "a single multiplication completes the packed multiplications"
//! property.

use crate::policy::PackSpec;
use vitbit_tensor::Matrix;

/// Precomputed bias-correction context for one GEMM.
#[derive(Debug, Clone)]
pub struct BiasCorrection {
    /// Value-side bias `Zb = 2^(b-1)`.
    pub zb: i64,
    /// Weight-side bias `Za = 2^(w-1)`.
    pub za: i64,
    /// Dot-product length `K`.
    pub k: i64,
    /// Per-row signed sums of the weight matrix A (`M` entries).
    pub rowsum_a: Vec<i64>,
    /// Per-column signed sums of the input matrix B (`N` entries).
    pub colsum_b: Vec<i64>,
}

impl BiasCorrection {
    /// Builds the correction for `C = A (MxK) * B (KxN)` under `spec`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn new(spec: &PackSpec, a: &Matrix<i8>, b: &Matrix<i8>) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dims of A and B");
        let rowsum_a = (0..a.rows())
            .map(|i| a.row(i).iter().map(|&x| i64::from(x)).sum())
            .collect();
        let mut colsum_b = vec![0i64; b.cols()];
        for r in 0..b.rows() {
            for (j, &x) in b.row(r).iter().enumerate() {
                colsum_b[j] += i64::from(x);
            }
        }
        Self {
            zb: i64::from(spec.value_bias()),
            za: i64::from(spec.weight_bias()),
            k: a.cols() as i64,
            rowsum_a,
            colsum_b,
        }
    }

    /// Builds the correction from a precomputed weight-side column sum
    /// (cached at weight-setup time alongside the packed operand); only the
    /// input-side row sums are recomputed per launch. Equivalent to
    /// [`BiasCorrection::new`] when `colsum_b` are `b`'s column sums.
    pub fn from_cached_colsum(spec: &PackSpec, a: &Matrix<i8>, colsum_b: &[i64]) -> Self {
        let rowsum_a = (0..a.rows())
            .map(|i| a.row(i).iter().map(|&x| i64::from(x)).sum())
            .collect();
        Self {
            zb: i64::from(spec.value_bias()),
            za: i64::from(spec.weight_bias()),
            k: a.cols() as i64,
            rowsum_a,
            colsum_b: colsum_b.to_vec(),
        }
    }

    /// Recovers the signed dot product from a biased lane sum for output
    /// element `(i, j)`.
    #[inline]
    pub fn apply(&self, biased_sum: u64, i: usize, j: usize) -> i64 {
        biased_sum as i64
            - self.zb * self.rowsum_a[i]
            - self.za * self.colsum_b[j]
            - self.k * self.za * self.zb
    }

    /// The constant part that does not depend on the output column; useful
    /// when a kernel folds corrections into a per-row bias register.
    #[inline]
    pub fn row_constant(&self, i: usize) -> i64 {
        -self.zb * self.rowsum_a[i] - self.k * self.za * self.zb
    }

    /// The per-column part (`-Za * colsum_B[j]`).
    #[inline]
    pub fn col_constant(&self, j: usize) -> i64 {
        -self.za * self.colsum_b[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{encode_biased, encode_weight_biased};
    use crate::policy::PackSpec;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn biased_gemm_sum(spec: &PackSpec, a: &Matrix<i8>, b: &Matrix<i8>, i: usize, j: usize) -> u64 {
        (0..a.cols())
            .map(|k| {
                let aw = encode_weight_biased(i32::from(a[(i, k)]), spec).unwrap();
                let bv = encode_biased(i32::from(b[(k, j)]), spec).unwrap();
                u64::from(aw) * u64::from(bv)
            })
            .sum()
    }

    #[test]
    fn correction_recovers_signed_gemm() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = Matrix::from_fn(3, 7, |r, c| ((r * 7 + c) as i32 % 60 - 30) as i8);
        let b = Matrix::from_fn(7, 4, |r, c| ((r * 4 + c) as i32 % 55 - 27) as i8);
        let reference = gemm_i8_i32(&a, &b);
        let corr = BiasCorrection::new(&spec, &a, &b);
        for i in 0..3 {
            for j in 0..4 {
                let s = biased_gemm_sum(&spec, &a, &b, i, j);
                assert_eq!(corr.apply(s, i, j), i64::from(reference[(i, j)]));
            }
        }
    }

    #[test]
    fn row_and_col_constants_compose() {
        let spec = PackSpec::guarded(4, 4).unwrap();
        let a = Matrix::from_fn(2, 5, |r, c| ((r + c) as i32 % 15 - 7) as i8);
        let b = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as i32 % 14 - 8) as i8);
        let corr = BiasCorrection::new(&spec, &a, &b);
        for i in 0..2 {
            for j in 0..3 {
                let s = biased_gemm_sum(&spec, &a, &b, i, j);
                let via_parts = s as i64 + corr.row_constant(i) + corr.col_constant(j);
                assert_eq!(via_parts, corr.apply(s, i, j));
            }
        }
    }

    #[test]
    fn correction_handles_extremes() {
        let spec = PackSpec::guarded(8, 8).unwrap();
        let a = Matrix::from_fn(1, 4, |_, _| -128i8);
        let b = Matrix::from_fn(4, 1, |_, _| 127i8);
        let reference = gemm_i8_i32(&a, &b);
        let corr = BiasCorrection::new(&spec, &a, &b);
        let s = biased_gemm_sum(&spec, &a, &b, 0, 0);
        assert_eq!(corr.apply(s, 0, 0), i64::from(reference[(0, 0)]));
    }

    #[test]
    fn cached_colsum_constructor_is_equivalent() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = Matrix::from_fn(3, 6, |r, c| ((r * 6 + c) as i32 % 50 - 25) as i8);
        let b = Matrix::from_fn(6, 5, |r, c| ((r * 5 + c) as i32 % 40 - 20) as i8);
        let full = BiasCorrection::new(&spec, &a, &b);
        let cached = BiasCorrection::from_cached_colsum(&spec, &a, &full.colsum_b);
        for i in 0..3 {
            for j in 0..5 {
                let s = biased_gemm_sum(&spec, &a, &b, i, j);
                assert_eq!(full.apply(s, i, j), cached.apply(s, i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dims_panic() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a: Matrix<i8> = Matrix::zeros(2, 3);
        let b: Matrix<i8> = Matrix::zeros(4, 2);
        let _ = BiasCorrection::new(&spec, &a, &b);
    }
}
