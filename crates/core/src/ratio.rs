//! Work-splitting ratios: the Tensor-vs-CUDA ratio *m* (Section 3.2) and the
//! INT-vs-FP ratio *n* (Equation 1).
//!
//! The paper measures GEMM time on each core class and assigns matrix
//! columns proportionally to core *speed*: Tensor cores get `m` shares and
//! the (packed) CUDA cores one share, where `m` is the packed-CUDA /
//! Tensor-core time ratio (≈ 4 on Jetson AGX Orin). Within the CUDA share,
//! Equation 1 gives the INT cores `n` columns for every FP column, where `n`
//! is the packing factor — equalizing the *instruction* load on the two
//! pipes, since each packed INT instruction covers `n` values.

use crate::error::PackError;

/// Integer share ratio `tc : cuda` between Tensor cores and CUDA cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreRatio {
    /// Shares assigned to Tensor cores (the paper's `m`).
    pub tc: u32,
    /// Shares assigned to CUDA cores (always ≥ 1).
    pub cuda: u32,
}

impl CoreRatio {
    /// The paper's measured ratio for Jetson AGX Orin: 4 : 1.
    pub const PAPER: Self = Self { tc: 4, cuda: 1 };

    /// A CUDA-cores-only ratio (no Tensor-core share).
    pub const CUDA_ONLY: Self = Self { tc: 0, cuda: 1 };

    /// A Tensor-cores-only ratio.
    pub const TC_ONLY: Self = Self { tc: 1, cuda: 0 };

    /// Fraction of columns assigned to Tensor cores.
    pub fn tc_fraction(&self) -> f64 {
        f64::from(self.tc) / f64::from(self.tc + self.cuda)
    }
}

/// Derives the ratio `m : 1` from measured kernel times, as in the paper's
/// initial study: columns are split proportionally to core speed, so
/// `m = round(time_cuda / time_tc)`, clamped to at least 1.
///
/// # Panics
/// Panics if either time is non-positive.
pub fn determine_core_ratio(time_tc: f64, time_cuda: f64) -> CoreRatio {
    assert!(
        time_tc > 0.0 && time_cuda > 0.0,
        "kernel times must be positive: tc={time_tc}, cuda={time_cuda}"
    );
    let m = (time_cuda / time_tc).round().max(1.0) as u32;
    CoreRatio { tc: m, cuda: 1 }
}

/// Splits a CUDA-core column count between INT and FP cores per Equation 1:
/// `n1 : n2 = n : 1` with `n1` rounded to a multiple of `lanes` (so that it
/// packs into whole registers). Returns `(n1, n2)`.
///
/// # Errors
/// [`PackError::BadSplit`] if `lanes == 0`.
pub fn eq1_split(cuda_cols: usize, lanes: u32) -> Result<(usize, usize), PackError> {
    if lanes == 0 {
        return Err(PackError::BadSplit("lanes must be >= 1".into()));
    }
    let n = lanes as usize;
    // Ideal n1 = cuda * n/(n+1); round down to a lane multiple.
    let ideal = cuda_cols * n / (n + 1);
    let n1 = ideal / n * n;
    Ok((n1, cuda_cols - n1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_from_initial_study() {
        // Section 3.2: packed CUDA GEMM is ~4x the TC time => m = 4.
        assert_eq!(determine_core_ratio(1.0, 4.0), CoreRatio::PAPER);
        assert_eq!(determine_core_ratio(1.0, 4.4), CoreRatio { tc: 4, cuda: 1 });
        assert_eq!(determine_core_ratio(1.0, 6.5), CoreRatio { tc: 7, cuda: 1 });
    }

    #[test]
    fn ratio_clamps_to_one() {
        // A CUDA path faster than TC still gets at least 1:1.
        assert_eq!(determine_core_ratio(2.0, 1.0), CoreRatio { tc: 1, cuda: 1 });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ratio_rejects_zero_time() {
        let _ = determine_core_ratio(0.0, 1.0);
    }

    #[test]
    fn tc_fraction() {
        assert!((CoreRatio::PAPER.tc_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(CoreRatio::CUDA_ONLY.tc_fraction(), 0.0);
        assert_eq!(CoreRatio::TC_ONLY.tc_fraction(), 1.0);
    }

    #[test]
    fn eq1_split_balances_instruction_load() {
        // n = 2 lanes: 2/3 of columns to INT (each register covers 2), 1/3 FP.
        let (n1, n2) = eq1_split(96, 2).unwrap();
        assert_eq!((n1, n2), (64, 32));
        // INT instructions ~ n1/2 = 32 == FP instructions n2 = 32.
        assert_eq!(n1 / 2, n2);
    }

    #[test]
    fn eq1_split_rounds_to_lane_multiple() {
        let (n1, n2) = eq1_split(100, 3).unwrap();
        assert_eq!(n1 % 3, 0);
        assert_eq!(n1 + n2, 100);
        // As close to 3:1 as lane rounding allows.
        assert_eq!(n1, 75);
    }

    #[test]
    fn eq1_split_edge_cases() {
        assert_eq!(eq1_split(0, 2).unwrap(), (0, 0));
        assert_eq!(eq1_split(1, 2).unwrap(), (0, 1));
        assert_eq!(eq1_split(3, 2).unwrap(), (2, 1));
        assert!(eq1_split(10, 0).is_err());
    }

    #[test]
    fn eq1_split_single_lane_goes_half() {
        // Unpacked (lanes=1): 1:1 split.
        let (n1, n2) = eq1_split(10, 1).unwrap();
        assert_eq!((n1, n2), (5, 5));
    }
}
