//! Error type for packing operations.

use std::fmt;

/// Errors raised by packing, preprocessing and SWAR operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// A code does not fit the signed range of the configured bitwidth.
    CodeOutOfRange {
        /// Offending value.
        value: i32,
        /// Configured value bitwidth.
        bitwidth: u32,
    },
    /// Requested bitwidth outside the supported `1..=32` range.
    InvalidBitwidth(u32),
    /// A slice length is not a multiple of the packing factor.
    LengthNotLaneMultiple {
        /// Slice length.
        len: usize,
        /// Packing factor (values per register).
        lanes: u32,
    },
    /// No lane configuration satisfies the guard-bit constraint for these
    /// operand widths (single products would already overflow a lane).
    NoFeasibleLanes {
        /// Value bitwidth.
        bitwidth: u32,
        /// Weight bitwidth.
        weight_bitwidth: u32,
    },
    /// A matrix split was requested with widths that do not add up.
    BadSplit(String),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CodeOutOfRange { value, bitwidth } => {
                write!(f, "code {value} outside signed {bitwidth}-bit range")
            }
            Self::InvalidBitwidth(b) => write!(f, "bitwidth {b} outside 1..=32"),
            Self::LengthNotLaneMultiple { len, lanes } => {
                write!(f, "length {len} is not a multiple of {lanes} lanes")
            }
            Self::NoFeasibleLanes {
                bitwidth,
                weight_bitwidth,
            } => write!(
                f,
                "no multi-lane packing fits {bitwidth}-bit values x {weight_bitwidth}-bit weights"
            ),
            Self::BadSplit(msg) => write!(f, "bad matrix split: {msg}"),
        }
    }
}

impl std::error::Error for PackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PackError::CodeOutOfRange {
            value: 200,
            bitwidth: 8,
        };
        assert!(e.to_string().contains("200"));
        assert!(e.to_string().contains("8-bit"));
        assert!(PackError::InvalidBitwidth(40).to_string().contains("40"));
        assert!(PackError::LengthNotLaneMultiple { len: 7, lanes: 2 }
            .to_string()
            .contains("7"));
    }
}
