//! # VitBit core: register operand packing
//!
//! This crate implements the paper's primary contribution — *register operand
//! packing* — as a host-usable library:
//!
//! * [`policy`] — the Figure-3 packing policy (how many `b`-bit values fit a
//!   32-bit register) plus a guard-bit-aware *guarded* policy that makes
//!   packed accumulation exact for arbitrarily long dot products;
//! * [`pack`] — biased-code encoding and lane packing/unpacking;
//! * [`swar`] — SWAR (SIMD-within-a-register) multiply-accumulate with
//!   chunked lane spilling;
//! * [`correction`] — the zero-point-style correction that recovers signed
//!   results from biased-unsigned lane arithmetic;
//! * [`preprocess`] — Algorithm 1: splitting the input matrix **B** into
//!   B1 (packed, INT cores), B2 (converted, FP cores) and B3 (Tensor cores),
//!   and duplicating the weight matrix **A** into INT/FP copies;
//! * [`ratio`] — Equation 1 and the Tensor-vs-CUDA split ratio *m* derived
//!   from measured kernel times (the paper's Section 3.2 initial study);
//! * [`host`] — a real CPU SWAR GEMM (u32 and u64 registers) used both as an
//!   executable model of the packed INT-core kernel and as a genuine host
//!   speedup demonstrated by the Criterion benches.
//!
//! ## Why biased encoding?
//!
//! The paper packs values "separated by zero-padding" and multiplies the
//! packed register by a zero-masked operand. With two's-complement lanes a
//! negative lane would sign-extend into its neighbours, so packed lanes must
//! be non-negative. We therefore store each `b`-bit signed code `v` as the
//! biased code `v + 2^(b-1)`, and fold the bias out of the final dot product
//! exactly like a quantization zero point (see [`correction`]). The
//! correction is a per-row/per-column constant — the same "no extra work in
//! the inner loop" property the paper claims.
//!
//! ## Exactness
//!
//! [`policy::PackPolicy::Paper`] reproduces Figure 3 literally (no guard
//! bits); its lane accumulators are exact only while the running lane sums
//! fit, i.e. for dot products no longer than [`policy::PackSpec::max_safe_k`].
//! [`policy::PackPolicy::Guarded`] spills lanes into wide accumulators every
//! `chunk_len` steps and is exact for every length — the property tests in
//! this crate prove both statements.

pub mod correction;
pub mod error;
pub mod host;
pub mod pack;
pub mod policy;
pub mod preprocess;
pub mod ratio;
pub mod swar;

pub use error::PackError;
pub use pack::{decode_biased, encode_biased, pack_codes, unpack_codes};
pub use policy::{PackPolicy, PackSpec};
pub use preprocess::{preprocess_input, preprocess_weights, Preprocessed, SplitWidths};
pub use ratio::{determine_core_ratio, CoreRatio};
