//! SWAR multiply-accumulate over packed registers.
//!
//! One 32-bit integer multiply of a biased weight code by a packed register
//! produces all lane products at once, provided every single product fits
//! its lane (guaranteed by [`PackSpec`] feasibility):
//!
//! ```text
//! a' * (b1' << s | b0') = (a'*b1') << s  +  a'*b0'
//! ```
//!
//! [`PackedAcc`] accumulates such products, spilling lanes into `u64`
//! accumulators every `chunk_len` steps under the guarded policy (never,
//! under the paper policy — reproducing its wraparound behaviour exactly).

use crate::policy::{PackPolicy, PackSpec};

/// Packed multiply: one integer multiplication computing `lanes` products.
///
/// Under the feasibility invariant (`a_code <= max_weight_code`, lanes hold
/// biased values, single products fit lanes) this wrapping multiply is
/// carry-free between lanes. This helper is also the *functional model* of
/// the packed `IMAD` the GPU kernels issue.
#[inline]
pub fn packed_mul(a_code: u32, packed: u32) -> u32 {
    a_code.wrapping_mul(packed)
}

/// A packed accumulator with per-lane wide spill storage.
///
/// The in-register accumulator mirrors exactly what a 32-bit GPU register
/// would hold; `wide` holds the spilled per-lane running totals (most
/// significant lane — the first packed element — at index 0).
#[derive(Debug, Clone)]
pub struct PackedAcc {
    spec: PackSpec,
    acc: u32,
    steps: u32,
    /// Per-lane spilled totals, first packed element first.
    wide: Vec<u64>,
    /// Total MAC steps absorbed (for instrumentation).
    total_steps: u64,
    /// Number of spills performed (instrumentation: each spill costs
    /// ~2 instructions per lane on the INT pipe).
    spills: u64,
}

impl PackedAcc {
    /// Creates an empty accumulator for `spec`.
    pub fn new(spec: PackSpec) -> Self {
        Self {
            spec,
            acc: 0,
            steps: 0,
            wide: vec![0; spec.lanes as usize],
            total_steps: 0,
            spills: 0,
        }
    }

    /// The spec this accumulator follows.
    pub fn spec(&self) -> &PackSpec {
        &self.spec
    }

    /// Accumulates `a_code * packed` (one packed IMAD).
    ///
    /// Under [`PackPolicy::Guarded`] the register is spilled first whenever
    /// another worst-case step could overflow a lane; under
    /// [`PackPolicy::Paper`] it never spills mid-stream and lanes may wrap,
    /// faithfully reproducing the paper's policy.
    #[inline]
    pub fn mac(&mut self, a_code: u32, packed: u32) {
        if self.spec.policy == PackPolicy::Guarded && self.steps >= self.spec.chunk_len() {
            self.spill();
        }
        self.acc = self.acc.wrapping_add(packed_mul(a_code, packed));
        self.steps += 1;
        self.total_steps += 1;
    }

    /// Moves the in-register lane sums into the wide accumulators.
    pub fn spill(&mut self) {
        if self.steps == 0 {
            return;
        }
        let mask = u64::from(self.spec.lane_mask());
        let acc = u64::from(self.acc);
        for lane in 0..self.spec.lanes {
            // wide[0] is the most significant lane (first packed element).
            let idx = lane as usize;
            let shift = self.spec.lane_shift(self.spec.lanes - 1 - lane);
            self.wide[idx] += (acc >> shift) & mask;
        }
        self.acc = 0;
        self.steps = 0;
        self.spills += 1;
    }

    /// Finishes accumulation and returns per-lane biased sums, first packed
    /// element first.
    pub fn finish(mut self) -> Vec<u64> {
        self.spill();
        self.wide
    }

    /// MAC steps absorbed so far.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Spills performed so far (excluding the final one in [`finish`]).
    ///
    /// [`finish`]: PackedAcc::finish
    pub fn spills(&self) -> u64 {
        self.spills
    }
}

/// Reference (non-SWAR) biased dot product: per-lane sums computed the slow
/// way. Ground truth for the property tests.
pub fn reference_lane_sums(spec: &PackSpec, weights: &[u32], packed: &[u32]) -> Vec<u64> {
    assert_eq!(weights.len(), packed.len());
    let mask = u64::from(spec.lane_mask());
    let mut sums = vec![0u64; spec.lanes as usize];
    for (&a, &reg) in weights.iter().zip(packed) {
        for lane in 0..spec.lanes {
            let shift = spec.lane_shift(spec.lanes - 1 - lane);
            let b = (u64::from(reg) >> shift) & mask;
            sums[lane as usize] += u64::from(a) * b;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack_codes;
    use vitbit_tensor::check;

    #[test]
    fn single_packed_mul_separates_lanes() {
        // a'=3, lanes: hi=100, lo=7 -> product lanes: 300, 21.
        let packed = (100u32 << 16) | 7;
        let p = packed_mul(3, packed);
        assert_eq!(p >> 16, 300);
        assert_eq!(p & 0xFFFF, 21);
    }

    #[test]
    fn guarded_acc_exact_beyond_chunk() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        assert_eq!(spec.chunk_len(), 16);
        // Worst-case operands for 100 steps: must spill and stay exact.
        let mut acc = PackedAcc::new(spec);
        let packed = pack_codes(&[31, 31], &spec).unwrap()[0]; // biased 63,63
        for _ in 0..100 {
            acc.mac(63, packed);
        }
        assert!(acc.spills() >= 6);
        let sums = acc.finish();
        assert_eq!(sums, vec![63 * 63 * 100, 63 * 63 * 100]);
    }

    #[test]
    fn paper_acc_wraps_beyond_safe_k() {
        let spec = PackSpec::paper(8).unwrap();
        assert_eq!(spec.max_safe_k(), 1);
        let mut acc = PackedAcc::new(spec);
        let packed = (255u32 << 16) | 255;
        for _ in 0..3 {
            acc.mac(255, packed);
        }
        assert_eq!(acc.spills(), 0, "paper policy never spills mid-stream");
        let sums = acc.finish();
        // 3 * 255 * 255 = 195075 > 65535: low lane wraps, carries pollute
        // the high lane -- exactly the failure mode DESIGN.md documents.
        assert_ne!(sums, vec![195075, 195075]);
        // Low lane is exact modulo 2^16.
        assert_eq!(sums[1], 195075 % 65536);
    }

    #[test]
    fn paper_acc_exact_within_safe_k() {
        let spec = PackSpec::paper(6).unwrap();
        // 6-bit values, paper lanes=2, lane 16 bits; safe K = 16.
        let mut acc = PackedAcc::new(spec);
        let packed = pack_codes(&[31, -32], &spec).unwrap()[0];
        for _ in 0..16 {
            acc.mac(63, packed);
        }
        let sums = acc.finish();
        assert_eq!(sums, vec![63 * 63 * 16, 0]);
    }

    #[test]
    fn three_lane_accumulation() {
        let spec = PackSpec::guarded(5, 5).unwrap();
        assert_eq!(spec.chunk_len(), 1);
        let mut acc = PackedAcc::new(spec);
        let packed = pack_codes(&[10, -5, 0], &spec).unwrap()[0];
        for _ in 0..40 {
            acc.mac(31, packed);
        }
        let sums = acc.finish();
        let b = |v: i64| (v + 16) as u64; // biased codes
        assert_eq!(sums, vec![31 * b(10) * 40, 31 * b(-5) * 40, 31 * b(0) * 40]);
    }

    #[test]
    fn spill_on_empty_is_noop() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let mut acc = PackedAcc::new(spec);
        acc.spill();
        assert_eq!(acc.spills(), 0);
        assert_eq!(acc.finish(), vec![0, 0]);
    }

    #[test]
    fn prop_guarded_matches_reference() {
        check::cases(0x53a7_0001, 256, |rng| {
            let bitwidth = rng.random_range(1u32..=8);
            let len = rng.random_range(1usize..200);
            let seed = rng.random_range(0u64..1000);
            let wb = bitwidth; // same-width weights are always feasible
            let spec = PackSpec::guarded(bitwidth, wb).unwrap();
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let vmax = spec.max_value_code();
            let wmax = spec.max_weight_code();
            let weights: Vec<u32> = (0..len).map(|_| (next() as u32) % (wmax + 1)).collect();
            let packed: Vec<u32> = (0..len)
                .map(|_| {
                    let mut reg = 0u32;
                    for lane in 0..spec.lanes {
                        reg |= ((next() as u32) % (vmax + 1)) << spec.lane_shift(lane);
                    }
                    reg
                })
                .collect();
            let mut acc = PackedAcc::new(spec);
            for (&a, &p) in weights.iter().zip(&packed) {
                acc.mac(a, p);
            }
            assert_eq!(acc.finish(), reference_lane_sums(&spec, &weights, &packed));
        });
    }

    #[test]
    fn prop_paper_exact_within_safe_k() {
        check::cases(0x53a7_0002, 256, |rng| {
            let bitwidth = rng.random_range(1u32..=8);
            let seed = rng.random_range(0u64..1000);
            let spec = PackSpec::paper(bitwidth).unwrap();
            let k = spec.max_safe_k().min(64) as usize;
            if k < 1 {
                return;
            }
            let mut x = seed.wrapping_mul(0xD1B54A32D192ED03).wrapping_add(3);
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let vmax = spec.max_value_code();
            let weights: Vec<u32> = (0..k).map(|_| (next() as u32) % (vmax + 1)).collect();
            let packed: Vec<u32> = (0..k)
                .map(|_| {
                    let mut reg = 0u32;
                    for lane in 0..spec.lanes {
                        reg |= ((next() as u32) % (vmax + 1)) << spec.lane_shift(lane);
                    }
                    reg
                })
                .collect();
            let mut acc = PackedAcc::new(spec);
            for (&a, &p) in weights.iter().zip(&packed) {
                acc.mac(a, p);
            }
            assert_eq!(acc.finish(), reference_lane_sums(&spec, &weights, &packed));
        });
    }
}
