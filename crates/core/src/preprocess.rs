//! Algorithm 1: VitBit input and weight preprocessing.
//!
//! The input matrix `B` (`K x N`, stored row-major with `K` rows as in a
//! standard GEMM; the paper writes it `N x K` with `N` the "width") is split
//! column-wise into three parts:
//!
//! * `B1` — columns for the **INT CUDA cores**, packed `lanes` per register;
//! * `B2` — columns for the **FP CUDA cores**, converted to `f32`;
//! * `B3` — columns for the **Tensor cores**, kept as zero-masked integers.
//!
//! Widths follow the paper: `N3 = N * m/(1+m)` (Tensor share), then the
//! CUDA remainder is split `N1 : N2 = n : 1` (Equation 1), with `N1` rounded
//! to whole registers. The weight matrix `A` is duplicated as `A1` (INT) and
//! `A2` (f32), a one-off setup cost.

use crate::error::PackError;
use crate::pack::pack_matrix_rows;
use crate::policy::PackSpec;
use crate::ratio::{eq1_split, CoreRatio};
use vitbit_tensor::Matrix;

/// Column widths of the three-way split of the input matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitWidths {
    /// Columns processed by INT CUDA cores (pre-packing).
    pub n1: usize,
    /// Registers per row after packing (`n1 / lanes`).
    pub n1_packed: usize,
    /// Columns processed by FP CUDA cores.
    pub n2: usize,
    /// Columns processed by Tensor cores.
    pub n3: usize,
}

impl SplitWidths {
    /// Computes the split for a total width `n_total` under core ratio
    /// `ratio` and packing factor `spec.lanes`, exactly following
    /// Algorithm 1 lines 3–6 (with `N1` rounded to whole registers).
    ///
    /// # Errors
    /// [`PackError::BadSplit`] when the widths cannot be realized.
    pub fn compute(n_total: usize, ratio: CoreRatio, spec: &PackSpec) -> Result<Self, PackError> {
        if ratio.tc == 0 && ratio.cuda == 0 {
            return Err(PackError::BadSplit("ratio 0:0".into()));
        }
        let denom = (ratio.tc + ratio.cuda) as usize;
        let n3 = if ratio.cuda == 0 {
            n_total
        } else {
            n_total * ratio.tc as usize / denom
        };
        let cuda = n_total - n3;
        let (n1, n2) = eq1_split(cuda, spec.lanes)?;
        Ok(Self {
            n1,
            n1_packed: n1 / spec.lanes as usize,
            n2,
            n3,
        })
    }

    /// Total width this split covers.
    pub fn total(&self) -> usize {
        self.n1 + self.n2 + self.n3
    }
}

/// Result of Algorithm 1 on one input matrix.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Packing configuration used.
    pub spec: PackSpec,
    /// Split widths.
    pub widths: SplitWidths,
    /// B1 columns before packing (kept for validation and corrections).
    pub b1_raw: Matrix<i8>,
    /// B1 packed `lanes` values per `u32` register, `K x n1_packed`.
    pub b1_packed: Matrix<u32>,
    /// B2 converted to f32, `K x n2`.
    pub b2: Matrix<f32>,
    /// B3 zero-masked integers for the Tensor cores, `K x n3`.
    pub b3: Matrix<i8>,
    /// Per-column signed sums of B1 (for the bias correction).
    pub colsum_b1: Vec<i64>,
}

/// Runs Algorithm 1 on input matrix `b` (`K x N`).
///
/// # Errors
/// Propagates split and packing failures (width rounding, code range).
pub fn preprocess_input(
    b: &Matrix<i8>,
    spec: &PackSpec,
    ratio: CoreRatio,
) -> Result<Preprocessed, PackError> {
    let widths = SplitWidths::compute(b.cols(), ratio, spec)?;
    let b1_raw = b.slice_cols(0, widths.n1);
    let b2_int = b.slice_cols(widths.n1, widths.n2);
    let b3 = b.slice_cols(widths.n1 + widths.n2, widths.n3);
    let b1_packed = pack_matrix_rows(&b1_raw, spec)?;
    let b2 = b2_int.map(|x| x as f32);
    let mut colsum_b1 = vec![0i64; widths.n1];
    for r in 0..b1_raw.rows() {
        for (j, &x) in b1_raw.row(r).iter().enumerate() {
            colsum_b1[j] += i64::from(x);
        }
    }
    Ok(Preprocessed {
        spec: *spec,
        widths,
        b1_raw,
        b1_packed,
        b2,
        b3,
        colsum_b1,
    })
}

/// Preprocessed weight matrix: the INT original plus its FP32 duplicate and
/// the per-row sums needed by the bias correction. Built once at model-load
/// time (the paper's "only required once during the initial setup").
#[derive(Debug, Clone)]
pub struct Weights {
    /// Original integer weights (`M x K`).
    pub a1: Matrix<i8>,
    /// f32 duplicate for the FP CUDA cores.
    pub a2: Matrix<f32>,
    /// Per-row signed sums of `a1`.
    pub rowsum: Vec<i64>,
}

/// Duplicates the weight matrix into INT and FP formats (paper Step 1).
pub fn preprocess_weights(a: &Matrix<i8>) -> Weights {
    let a2 = a.map(|x| x as f32);
    let rowsum = (0..a.rows())
        .map(|i| a.row(i).iter().map(|&x| i64::from(x)).sum())
        .collect();
    Weights {
        a1: a.clone(),
        a2,
        rowsum,
    }
}

/// Reassembles the three partial GEMM outputs into the full `M x N` result,
/// inverting the column split.
///
/// # Panics
/// Panics if row counts disagree.
pub fn reassemble(c1: &Matrix<i32>, c2: &Matrix<i32>, c3: &Matrix<i32>) -> Matrix<i32> {
    Matrix::concat_cols(&[c1, c2, c3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitbit_tensor::gen;

    fn spec6() -> PackSpec {
        PackSpec::guarded(6, 6).unwrap()
    }

    #[test]
    fn widths_follow_algorithm1() {
        // N=768, m=4:1 -> N3 = 768*4/5 = 614; cuda = 154;
        // eq1 with lanes=2: ideal 102 -> 102 (multiple of 2), N2 = 52.
        let w = SplitWidths::compute(768, CoreRatio::PAPER, &spec6()).unwrap();
        assert_eq!(w.n3, 614);
        assert_eq!(w.n1, 102);
        assert_eq!(w.n1_packed, 51);
        assert_eq!(w.n2, 52);
        assert_eq!(w.total(), 768);
    }

    #[test]
    fn cuda_only_split_has_no_tc_share() {
        let w = SplitWidths::compute(96, CoreRatio::CUDA_ONLY, &spec6()).unwrap();
        assert_eq!(w.n3, 0);
        assert_eq!((w.n1, w.n2), (64, 32));
    }

    #[test]
    fn tc_only_split_assigns_everything_to_tc() {
        let w = SplitWidths::compute(96, CoreRatio::TC_ONLY, &spec6()).unwrap();
        assert_eq!(w.n3, 96);
        assert_eq!((w.n1, w.n2), (0, 0));
    }

    #[test]
    fn preprocess_partitions_columns_in_order() {
        let spec = spec6();
        let b = Matrix::from_fn(4, 20, |r, c| ((r * 20 + c) as i32 % 60 - 30) as i8);
        let pre = preprocess_input(&b, &spec, CoreRatio { tc: 3, cuda: 1 }).unwrap();
        // N3 = 15, cuda 5 -> n1 = 2 (lane multiple of ideal 3), n2 = 3.
        assert_eq!(pre.widths.n3, 15);
        assert_eq!(pre.widths.n1, 2);
        assert_eq!(pre.widths.n2, 3);
        assert_eq!(pre.b1_raw[(1, 0)], b[(1, 0)]);
        assert_eq!(pre.b2[(2, 0)], f32::from(b[(2, 2)]));
        assert_eq!(pre.b3[(3, 0)], b[(3, 5)]);
    }

    #[test]
    fn preprocess_colsums_match_b1() {
        let spec = spec6();
        let b = gen::uniform_i8(6, 12, -30, 30, 77);
        let pre = preprocess_input(&b, &spec, CoreRatio::CUDA_ONLY).unwrap();
        for j in 0..pre.widths.n1 {
            let want: i64 = (0..6).map(|r| i64::from(b[(r, j)])).sum();
            assert_eq!(pre.colsum_b1[j], want);
        }
    }

    #[test]
    fn packed_matrix_has_register_width() {
        let spec = spec6();
        let b = gen::uniform_i8(3, 30, -30, 30, 5);
        let pre = preprocess_input(&b, &spec, CoreRatio::CUDA_ONLY).unwrap();
        assert_eq!(pre.b1_packed.shape(), (3, pre.widths.n1_packed));
    }

    #[test]
    fn weights_duplicate_and_rowsum() {
        let a = Matrix::from_vec(2, 3, vec![1i8, -2, 3, 4, 5, -6]);
        let w = preprocess_weights(&a);
        assert_eq!(w.a1, a);
        assert_eq!(w.a2[(1, 2)], -6.0);
        assert_eq!(w.rowsum, vec![2, 3]);
    }

    #[test]
    fn reassemble_inverts_split() {
        let spec = spec6();
        let b = gen::uniform_i8(5, 40, -30, 30, 9);
        let pre = preprocess_input(&b, &spec, CoreRatio::PAPER).unwrap();
        let c1 = pre.b1_raw.map(i32::from);
        let c2 = pre.b2.map(|x| x as i32);
        let c3 = pre.b3.map(i32::from);
        let full = reassemble(&c1, &c2, &c3);
        assert_eq!(full, b.map(i32::from));
    }

    #[test]
    fn zero_width_input() {
        let spec = spec6();
        let b: Matrix<i8> = Matrix::zeros(3, 0);
        let pre = preprocess_input(&b, &spec, CoreRatio::PAPER).unwrap();
        assert_eq!(pre.widths.total(), 0);
    }
}
