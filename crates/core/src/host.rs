//! Host-side packed GEMM: a real CPU implementation of the VitBit packed
//! INT-core kernel.
//!
//! Two register widths are provided:
//!
//! * [`packed_gemm`] works in `u32` registers — the exact functional model
//!   of the GPU kernel (`vitbit-kernels` validates its simulated packed GEMM
//!   against this);
//! * [`packed_gemm_wide`] widens the same lane layout into `u64` host
//!   registers (twice the lanes per multiply), which is how the technique
//!   pays off on a 64-bit CPU. The Criterion bench `host_swar` measures its
//!   genuine speedup over the scalar reference.

use crate::correction::BiasCorrection;
use crate::error::PackError;
use crate::pack::{encode_weight_biased, pack_matrix_rows};
use crate::policy::{PackPolicy, PackSpec};
use crate::swar::PackedAcc;
use vitbit_tensor::Matrix;

/// Packed integer GEMM `C = A (MxK) * B (KxN)` using 32-bit SWAR registers.
///
/// `B`'s width must be a multiple of `spec.lanes`. Exact for
/// [`PackPolicy::Guarded`]; under [`PackPolicy::Paper`] exact only when
/// `K <= spec.max_safe_k()`.
///
/// # Errors
/// Propagates packing errors (lane-multiple width, code range).
pub fn packed_gemm(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    spec: &PackSpec,
) -> Result<Matrix<i32>, PackError> {
    assert_eq!(a.cols(), b.rows(), "inner dims of A and B");
    let packed_b = pack_matrix_rows(b, spec)?;
    let corr = BiasCorrection::new(spec, a, b);
    let a_codes = encode_weight_matrix(a, spec)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let lanes = spec.lanes as usize;
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a_codes.row(i);
        for jg in 0..packed_b.cols() {
            let mut acc = PackedAcc::new(*spec);
            for kk in 0..k {
                acc.mac(arow[kk], packed_b[(kk, jg)]);
            }
            let sums = acc.finish();
            for (p, &s) in sums.iter().enumerate() {
                let j = jg * lanes + p;
                c[(i, j)] = corr.apply(s, i, j) as i32;
            }
        }
    }
    Ok(c)
}

/// Packed integer GEMM using 64-bit host registers: same lane width as
/// `spec`, but `64 / lane_bits` lanes per multiply.
///
/// # Errors
/// Propagates packing errors. `B`'s width must be a multiple of the *wide*
/// lane count.
pub fn packed_gemm_wide(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    spec: &PackSpec,
) -> Result<Matrix<i32>, PackError> {
    assert_eq!(a.cols(), b.rows(), "inner dims of A and B");
    let lane_bits = spec.lane_bits;
    let wide_lanes = (64 / lane_bits) as usize;
    if !b.cols().is_multiple_of(wide_lanes) {
        return Err(PackError::LengthNotLaneMultiple {
            len: b.cols(),
            lanes: wide_lanes as u32,
        });
    }
    let corr = BiasCorrection::new(spec, a, b);
    let a_codes = encode_weight_matrix(a, spec)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let vbias = spec.value_bias();

    // Pack B rows into u64 registers, first element in the highest lane.
    let packed_cols = n / wide_lanes;
    let mut packed = vec![0u64; k * packed_cols];
    for r in 0..k {
        for jg in 0..packed_cols {
            let mut reg = 0u64;
            for p in 0..wide_lanes {
                let v = i32::from(b[(r, jg * wide_lanes + p)]);
                if v < -vbias || v > vbias - 1 {
                    return Err(PackError::CodeOutOfRange {
                        value: v,
                        bitwidth: spec.bitwidth,
                    });
                }
                let code = (v + vbias) as u64;
                reg |= code << (lane_bits as usize * (wide_lanes - 1 - p));
            }
            packed[r * packed_cols + jg] = reg;
        }
    }

    let chunk = spec.chunk_len().max(1) as usize;
    let mask = (1u64 << lane_bits) - 1;
    let mut c = Matrix::zeros(m, n);
    // k-outer / register-inner loop order: the inner sweep over packed
    // registers is contiguous (cache- and autovectorizer-friendly), with
    // one guarded-spill pass over all accumulators every `chunk` steps.
    let mut accs = vec![0u64; packed_cols];
    let mut wide_sums = vec![0u64; packed_cols * wide_lanes];
    for i in 0..m {
        let arow = a_codes.row(i);
        accs.iter_mut().for_each(|x| *x = 0);
        wide_sums.iter_mut().for_each(|x| *x = 0);
        let mut steps = 0usize;
        for kk in 0..k {
            if steps == chunk {
                for (jg, acc) in accs.iter_mut().enumerate() {
                    spill_u64(
                        *acc,
                        lane_bits,
                        wide_lanes,
                        mask,
                        &mut wide_sums[jg * wide_lanes..(jg + 1) * wide_lanes],
                    );
                    *acc = 0;
                }
                steps = 0;
            }
            let av = u64::from(arow[kk]);
            let row = &packed[kk * packed_cols..(kk + 1) * packed_cols];
            for (acc, &reg) in accs.iter_mut().zip(row) {
                *acc = acc.wrapping_add(av.wrapping_mul(reg));
            }
            steps += 1;
        }
        for (jg, acc) in accs.iter_mut().enumerate() {
            spill_u64(
                *acc,
                lane_bits,
                wide_lanes,
                mask,
                &mut wide_sums[jg * wide_lanes..(jg + 1) * wide_lanes],
            );
            *acc = 0;
        }
        for jg in 0..packed_cols {
            for p in 0..wide_lanes {
                let j = jg * wide_lanes + p;
                c[(i, j)] = corr.apply(wide_sums[jg * wide_lanes + p], i, j) as i32;
            }
        }
    }
    Ok(c)
}

#[inline]
fn spill_u64(acc: u64, lane_bits: u32, wide_lanes: usize, mask: u64, sums: &mut [u64]) {
    for (p, s) in sums.iter_mut().enumerate() {
        let shift = lane_bits as usize * (wide_lanes - 1 - p);
        *s += (acc >> shift) & mask;
    }
}

fn encode_weight_matrix(a: &Matrix<i8>, spec: &PackSpec) -> Result<Matrix<u32>, PackError> {
    let mut data = Vec::with_capacity(a.len());
    for r in 0..a.rows() {
        for &w in a.row(r) {
            data.push(encode_weight_biased(i32::from(w), spec)?);
        }
    }
    Ok(Matrix::from_vec(a.rows(), a.cols(), data))
}

/// True when the paper (unguarded) policy would be exact for this GEMM's
/// inner length under worst-case operands.
pub fn paper_policy_exact_for(spec: &PackSpec, k: usize) -> bool {
    spec.policy == PackPolicy::Guarded || k as u64 <= u64::from(spec.max_safe_k())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitbit_tensor::check;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn clamp_matrix(m: &Matrix<i8>, bitwidth: u32) -> Matrix<i8> {
        let hi = (1i32 << (bitwidth - 1)) - 1;
        m.map(|x| i32::from(x).clamp(-hi - 1, hi) as i8)
    }

    #[test]
    fn guarded_u32_matches_reference_int6() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = clamp_matrix(&gen::uniform_i8(9, 100, -32, 31, 1), 6);
        let b = clamp_matrix(&gen::uniform_i8(100, 12, -32, 31, 2), 6);
        let got = packed_gemm(&a, &b, &spec).unwrap();
        assert_eq!(got, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn guarded_u32_matches_reference_int8_split_product() {
        // chunk_len == 1: every step spills, still exact.
        let spec = PackSpec::guarded(8, 8).unwrap();
        let a = gen::uniform_i8(5, 64, -128, 127, 3);
        let b = gen::uniform_i8(64, 8, -128, 127, 4);
        let got = packed_gemm(&a, &b, &spec).unwrap();
        assert_eq!(got, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn guarded_u32_matches_reference_int4_four_lanes() {
        let spec = PackSpec::guarded(4, 4).unwrap();
        let a = clamp_matrix(&gen::uniform_i8(7, 33, -8, 7, 5), 4);
        let b = clamp_matrix(&gen::uniform_i8(33, 16, -8, 7, 6), 4);
        let got = packed_gemm(&a, &b, &spec).unwrap();
        assert_eq!(got, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn paper_policy_wraps_for_long_k_int8() {
        let spec = PackSpec::paper(8).unwrap();
        assert!(!paper_policy_exact_for(&spec, 768));
        let a = Matrix::from_fn(1, 64, |_, _| 127i8);
        let b = Matrix::from_fn(64, 2, |_, _| 127i8);
        let got = packed_gemm(&a, &b, &spec).unwrap();
        assert_ne!(got, gemm_i8_i32(&a, &b), "paper policy must wrap here");
    }

    #[test]
    fn paper_policy_exact_for_short_k() {
        let spec = PackSpec::paper(6).unwrap();
        assert!(paper_policy_exact_for(&spec, 16));
        let a = clamp_matrix(&gen::uniform_i8(3, 16, -32, 31, 7), 6);
        let b = clamp_matrix(&gen::uniform_i8(16, 6, -32, 31, 8), 6);
        let got = packed_gemm(&a, &b, &spec).unwrap();
        assert_eq!(got, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn wide_u64_matches_reference() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        // wide lanes = 64/16 = 4; width must be a multiple of 4.
        let a = clamp_matrix(&gen::uniform_i8(6, 80, -32, 31, 9), 6);
        let b = clamp_matrix(&gen::uniform_i8(80, 12, -32, 31, 10), 6);
        let got = packed_gemm_wide(&a, &b, &spec).unwrap();
        assert_eq!(got, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn wide_rejects_bad_width() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a: Matrix<i8> = Matrix::zeros(2, 4);
        let b: Matrix<i8> = Matrix::zeros(4, 6); // 6 % 4 != 0
        assert!(matches!(
            packed_gemm_wide(&a, &b, &spec),
            Err(PackError::LengthNotLaneMultiple { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_codes() {
        let spec = PackSpec::guarded(4, 4).unwrap();
        let a = Matrix::from_vec(1, 1, vec![3i8]);
        let b = Matrix::from_vec(1, 4, vec![100i8, 0, 0, 0]);
        assert!(matches!(
            packed_gemm(&a, &b, &spec),
            Err(PackError::CodeOutOfRange { .. })
        ));
    }

    #[test]
    fn prop_guarded_gemm_exact() {
        check::cases(0x405_0001, 24, |rng| {
            let bitwidth = rng.random_range(4u32..=8);
            let m = rng.random_range(1usize..6);
            let k = rng.random_range(1usize..48);
            let jg = rng.random_range(1usize..5);
            let seed = rng.random_range(0u64..500);
            let spec = PackSpec::guarded(bitwidth, bitwidth).unwrap();
            let n = jg * spec.lanes as usize;
            let hi = (1i32 << (bitwidth - 1)) - 1;
            let a = clamp_matrix(
                &gen::uniform_i8(m, k, (-hi - 1) as i8, hi as i8, seed),
                bitwidth,
            );
            let b = clamp_matrix(
                &gen::uniform_i8(k, n, (-hi - 1) as i8, hi as i8, seed + 1),
                bitwidth,
            );
            let got = packed_gemm(&a, &b, &spec).unwrap();
            assert_eq!(got, gemm_i8_i32(&a, &b));
        });
    }

    #[test]
    fn prop_wide_gemm_exact() {
        check::cases(0x405_0002, 48, |rng| {
            let bitwidth = [4u32, 6, 7, 8][rng.random_range(0usize..4)];
            let k = rng.random_range(1usize..40);
            let seed = rng.random_range(0u64..500);
            let spec = PackSpec::guarded(bitwidth, bitwidth).unwrap();
            let wide = (64 / spec.lane_bits) as usize;
            let n = 2 * wide;
            let hi = (1i32 << (bitwidth - 1)) - 1;
            let a = clamp_matrix(
                &gen::uniform_i8(3, k, (-hi - 1) as i8, hi as i8, seed),
                bitwidth,
            );
            let b = clamp_matrix(
                &gen::uniform_i8(k, n, (-hi - 1) as i8, hi as i8, seed + 7),
                bitwidth,
            );
            let got = packed_gemm_wide(&a, &b, &spec).unwrap();
            assert_eq!(got, gemm_i8_i32(&a, &b));
        });
    }
}
