//! One function per paper artifact (tables, figures, the Section-3.2 study
//! and the extension/ablation experiments). Each returns a plain-text
//! report with the paper's value next to the measured one.

use crate::suite::{HarnessOpts, VitSuite};
use std::fmt::Write as _;
use vitbit_core::policy::{PackPolicy, PackSpec};
use vitbit_core::ratio::CoreRatio;
use vitbit_exec::{run_initial_study, ExecConfig, Strategy};
use vitbit_kernels::gemm::{run_ic, run_packed};
use vitbit_plan::{Engine, GemmDesc};
use vitbit_sim::config::peak_throughput_table;
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::gen;
use vitbit_vit::KernelClass;

/// The ViT-Base Linear shape used by single-GEMM experiments.
pub const LINEAR_SHAPE: (usize, usize, usize) = (197, 768, 768);

const LINEAR_SITES: [&str; 6] = ["qkv", "scores", "attn_v", "proj", "fc1", "fc2"];
const CUDA_SITES: [&str; 5] = ["softmax", "gelu", "layernorm", "dropout", "residual"];

fn site_cycles(run: &vitbit_vit::VitRun, name: &str) -> u64 {
    run.timings
        .iter()
        .filter(|t| t.name == name)
        .map(|t| t.stats.cycles)
        .sum()
}

fn site_insts(run: &vitbit_vit::VitRun, name: &str) -> u64 {
    run.timings
        .iter()
        .filter(|t| t.name == name)
        .map(|t| t.stats.issued.total())
        .sum()
}

#[allow(dead_code)]
fn site_ipc(run: &vitbit_vit::VitRun, name: &str) -> f64 {
    let c = site_cycles(run, name);
    if c == 0 {
        return 0.0;
    }
    site_insts(run, name) as f64 / c as f64
}

/// Table 1: peak throughput per numeric format.
pub fn table1() -> String {
    let cfg = OrinConfig::jetson_agx_orin();
    let paper: &[(&str, &str, f64)] = &[
        ("FP32", "CUDA Core", 4.0),
        ("FP16", "CUDA Core", 8.0),
        ("TF32", "Tensor Core", 32.0),
        ("FP16", "Tensor Core", 65.0),
        ("BFloat16", "Tensor Core", 65.0),
        ("INT32", "CUDA Core", 4.0),
        ("INT8", "Tensor Core", 131.0),
        ("INT4", "Tensor Core", 262.0),
    ];
    let table = peak_throughput_table(&cfg);
    let mut out = String::from("Table 1 — Peak throughput of NVIDIA Jetson Orin AGX\n");
    let _ = writeln!(
        out,
        "{:<10} {:<12} {:>12} {:>12}",
        "Format", "Unit", "paper", "model"
    );
    for (fmt, unit, want) in paper {
        let got = table
            .iter()
            .find(|r| r.format == *fmt && r.unit == *unit)
            .map_or(f64::NAN, |r| r.tops);
        let _ = writeln!(out, "{fmt:<10} {unit:<12} {want:>9.0} T {got:>9.1} T");
    }
    out
}

/// Table 2: evaluation configuration.
pub fn table2(opts: &HarnessOpts) -> String {
    let cfg = OrinConfig::jetson_agx_orin();
    let vit = opts.vit_config();
    let mut out = String::from("Table 2 — Evaluation configuration\n");
    let _ = writeln!(out, "Platform        : {}", cfg.name);
    let _ = writeln!(
        out,
        "GPU             : Ampere, {} SMs, {} CUDA cores, {} Tensor cores",
        cfg.num_sms,
        cfg.cuda_cores(),
        cfg.tensor_cores()
    );
    let _ = writeln!(out, "Clock           : {:.2} GHz", cfg.clock_ghz);
    let _ = writeln!(
        out,
        "Memory          : LPDDR5 model, {:.1} GB/s",
        cfg.dram_gbps
    );
    let _ = writeln!(
        out,
        "DNN model       : ViT-Base ({} blocks, dim {}, heads {}, MLP {}, {} tokens)",
        vit.blocks, vit.dim, vit.heads, vit.mlp_dim, vit.tokens
    );
    let _ = writeln!(
        out,
        "Quantization    : integer-only (I-ViT style), INT{} codes",
        vit.bitwidth
    );
    let _ = writeln!(
        out,
        "GEMM MACs/pass  : {:.2} G",
        vit.gemm_macs() as f64 / 1e9
    );
    out
}

/// Table 3: comparison groups.
pub fn table3() -> String {
    let mut out = String::from("Table 3 — Comparison group for evaluation\n");
    for s in Strategy::ALL {
        let _ = writeln!(
            out,
            "{:<9} {:<4} {}",
            s.name(),
            s.applicability(),
            s.description()
        );
    }
    out
}

/// Section 3.2 initial study: GEMM time per core class, normalized to TC.
pub fn study(opts: &HarnessOpts) -> String {
    let mut gpu = opts.gpu();
    let (m, n, k) = LINEAR_SHAPE;
    let r = run_initial_study(&mut gpu, m, n, k, opts.bitwidth);
    let norm = r.normalized();
    let paper = [1.0, 7.5, 7.5, 6.5, 4.0];
    let names = ["TC", "IC", "FC", "IC+FC", "IC+FC+P"];
    let mut out = format!(
        "Section 3.2 initial study — GEMM {m}x{n}x{k}, INT{} (times / TC)\n",
        opts.bitwidth
    );
    let _ = writeln!(out, "{:<9} {:>8} {:>9}", "case", "paper", "measured");
    for i in 0..5 {
        let _ = writeln!(out, "{:<9} {:>7.1}x {:>8.2}x", names[i], paper[i], norm[i]);
    }
    let ratio = r.derived_ratio();
    let _ = writeln!(
        out,
        "derived Tensor:CUDA ratio m = {}:{} (paper: 4:1)",
        ratio.tc, ratio.cuda
    );
    out
}

/// Figure 5: normalized ViT inference time per simultaneous-execution
/// method (speedup over TC).
pub fn fig5(suite: &VitSuite) -> String {
    let tc = suite.run(Strategy::Tc).total_cycles() as f64;
    let paper = [
        (Strategy::Tc, 1.0),
        (Strategy::Tacker, 1.06),
        (Strategy::TcIcFc, 1.11),
        (Strategy::VitBit, 1.22),
    ];
    let mut out = String::from("Figure 5 — ViT-Base inference speedup over TC\n");
    let _ = writeln!(
        out,
        "{:<9} {:>8} {:>9} {:>14}",
        "method", "paper", "measured", "cycles"
    );
    for (s, want) in paper {
        let cyc = suite.run(s).total_cycles();
        let got = tc / cyc as f64;
        let _ = writeln!(
            out,
            "{:<9} {:>7.2}x {:>8.2}x {:>14}",
            s.name(),
            want,
            got,
            cyc
        );
    }
    out
}

/// Figure 6: Linear-kernel speedups of VitBit over TC, per kernel site.
pub fn fig6(suite: &VitSuite) -> String {
    let tc = suite.run(Strategy::Tc);
    let vb = suite.run(Strategy::VitBit);
    let mut out = String::from("Figure 6 — Linear (GEMM) kernel speedup, VitBit vs TC\n");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>9}",
        "kernel", "TC cyc", "VitBit cyc", "speedup"
    );
    let mut speedups = Vec::new();
    for site in LINEAR_SITES {
        let a = site_cycles(tc, site);
        let b = site_cycles(vb, site);
        if a == 0 || b == 0 {
            continue;
        }
        let sp = a as f64 / b as f64;
        speedups.push(sp);
        let _ = writeln!(out, "{site:<8} {a:>10} {b:>10} {sp:>8.2}x");
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    let _ = writeln!(
        out,
        "average {avg:.2}x (paper 1.28x)   max {max:.2}x (paper 1.35x)"
    );
    out
}

/// Figure 7: CUDA-core kernel speedups over IC, per kernel.
pub fn fig7(suite: &VitSuite) -> String {
    let ic = suite.run(Strategy::Ic);
    let icfc = suite.run(Strategy::IcFc);
    let vb = suite.run(Strategy::VitBit);
    let mut out = String::from("Figure 7 — CUDA-core kernel speedup over IC\n");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>9} {:>9}",
        "kernel", "IC cyc", "IC+FC", "VitBit"
    );
    let mut sp_icfc = Vec::new();
    let mut sp_vb = Vec::new();
    for site in CUDA_SITES {
        let a = site_cycles(ic, site);
        let b = site_cycles(icfc, site);
        let c = site_cycles(vb, site);
        if a == 0 || b == 0 || c == 0 {
            continue;
        }
        let s1 = a as f64 / b as f64;
        let s2 = a as f64 / c as f64;
        sp_icfc.push(s1);
        sp_vb.push(s2);
        let _ = writeln!(out, "{site:<10} {a:>10} {s1:>8.2}x {s2:>8.2}x");
    }
    let avg1 = sp_icfc.iter().sum::<f64>() / sp_icfc.len().max(1) as f64;
    let avg2 = sp_vb.iter().sum::<f64>() / sp_vb.len().max(1) as f64;
    let max2 = sp_vb.iter().cloned().fold(0.0, f64::max);
    let _ = writeln!(out, "IC+FC avg {avg1:.2}x (paper 1.05x)");
    let _ = writeln!(
        out,
        "VitBit avg {avg2:.2}x (paper 1.14x)  max {max2:.2}x (paper 1.18x)"
    );
    out
}

/// Figure 8: arithmetic density (ops/cycle) normalized to TC.
pub fn fig8(suite: &VitSuite) -> String {
    let tc = suite.run(Strategy::Tc).aggregate().arith_density();
    let paper = [
        (Strategy::Tacker, 1.11),
        (Strategy::TcIcFc, 1.17),
        (Strategy::VitBit, 1.28),
    ];
    let mut out = String::from("Figure 8 — Arithmetic density over TC\n");
    let _ = writeln!(
        out,
        "{:<9} {:>8} {:>9} {:>12}",
        "method", "paper", "measured", "ops/cycle"
    );
    let _ = writeln!(out, "{:<9} {:>7.2}x {:>8.2}x {:>12.0}", "TC", 1.0, 1.0, tc);
    for (s, want) in paper {
        let d = suite.run(s).aggregate().arith_density();
        let _ = writeln!(
            out,
            "{:<9} {:>7.2}x {:>8.2}x {:>12.0}",
            s.name(),
            want,
            d / tc,
            d
        );
    }
    out
}

/// Figure 9: instruction count per kernel site, VitBit vs IC+FC (reduction
/// factor; paper: up to 1.5x).
pub fn fig9(suite: &VitSuite, opts: &HarnessOpts) -> String {
    let icfc = suite.run(Strategy::IcFc);
    let vb = suite.run(Strategy::VitBit);
    let mut out = String::from("Figure 9 — Instruction count reduction, VitBit vs IC+FC\n");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>10}",
        "kernel", "IC+FC insts", "VitBit insts", "reduction"
    );
    let mut best: f64 = 0.0;
    let mut tot_a = 0u64;
    let mut tot_b = 0u64;
    for site in LINEAR_SITES.iter().chain(CUDA_SITES.iter()) {
        let a = site_insts(icfc, site);
        let b = site_insts(vb, site);
        if a == 0 || b == 0 {
            continue;
        }
        tot_a += a;
        tot_b += b;
        let red = a as f64 / b as f64;
        best = best.max(red);
        let _ = writeln!(out, "{site:<10} {a:>12} {b:>12} {red:>9.2}x");
    }
    let _ = writeln!(
        out,
        "total {:.2}x, best site {:.2}x",
        tot_a as f64 / tot_b.max(1) as f64,
        best
    );
    let _ = writeln!(
        out,
        "(GEMM rows also reflect VitBit's Tensor-core offload; the paper's\n\
         like-for-like packing claim — INT instructions of the packed vs\n\
         zero-masked CUDA kernel — is measured below)"
    );
    // Apples-to-apples: packed vs zero-masked INT instruction count on the
    // ViT Linear shape (the Figure 9 "up to 1.5x" claim).
    let mut gpu = opts.gpu();
    let spec = PackSpec::guarded(6, 6).expect("valid");
    let (m, n, k) = LINEAR_SHAPE;
    let a = gen::uniform_i8(m, k, -32, 31, 41);
    let b = gen::uniform_i8(k, n, -32, 31, 42);
    gpu.cold_caches();
    let ic = run_ic(&mut gpu, &a, &b).expect("gemm").stats.issued.int;
    gpu.cold_caches();
    let pk = run_packed(&mut gpu, &a, &b, &spec)
        .expect("gemm")
        .stats
        .issued
        .int;
    let _ = writeln!(
        out,
        "packed vs zero-masked INT instructions (same GEMM): {:.2}x (paper: up to 1.5x)",
        ic as f64 / pk as f64
    );
    out
}

/// Figure 10: average IPC per method (dual-pipe vs single-pipe CUDA use).
pub fn fig10(suite: &VitSuite) -> String {
    let mut out = String::from("Figure 10 — Average IPC (CUDA-core kernels)\n");
    let _ = writeln!(out, "{:<9} {:>8} {:>9}", "method", "agg IPC", "cuda-IPC");
    let mut single: f64 = 0.0;
    let mut dual = 0.0;
    for s in [Strategy::Ic, Strategy::Fc, Strategy::IcFc, Strategy::VitBit] {
        let run = suite.run(s);
        let agg = run.aggregate();
        // IPC over the CUDA-kernel sites only (the Figure-10 view).
        let mut cyc = 0u64;
        let mut insts = 0u64;
        for t in run.timings.iter().filter(|t| t.class == KernelClass::Cuda) {
            cyc += t.stats.cycles;
            insts += t.stats.issued.total();
        }
        let cuda_ipc = insts as f64 / cyc.max(1) as f64;
        match s {
            Strategy::Ic | Strategy::Fc => single = single.max(cuda_ipc),
            Strategy::IcFc => dual = cuda_ipc,
            _ => {}
        }
        let _ = writeln!(out, "{:<9} {:>8.1} {:>9.1}", s.name(), agg.ipc(), cuda_ipc);
    }
    let _ = writeln!(
        out,
        "dual-pipe over single-pipe: {:.2}x (paper: 1.3x)",
        dual / single.max(1e-9)
    );
    out
}

/// Accuracy check: the paper's "without compromising inference accuracy"
/// claim, measured as top-1 agreement and worst-case logit deviation of
/// every Figure-5 method against the integer reference over an input batch.
pub fn accuracy(opts: &HarnessOpts) -> String {
    use vitbit_vit::{run_vit_planned, ViTModel, VitPlan};
    let mut cfg = *opts;
    cfg.quick = true; // full functional pass; reduced dims keep this quick
    let vit_cfg = cfg.vit_config();
    let model = ViTModel::new(vit_cfg, 99);
    let exec = ExecConfig::guarded(vit_cfg.bitwidth);
    let mut gpu = opts.gpu();
    let batch = 5u64;
    let mut out = format!(
        "Accuracy — top-1 agreement and logit deviation vs integer reference          ({} inputs, reduced dims)
",
        batch
    );
    let _ = writeln!(out, "{:<9} {:>8} {:>12}", "method", "top-1", "max |dlogit|");
    let argmax = |m: &vitbit_tensor::Matrix<i32>| {
        m.row(0)
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(i, _)| i)
            .unwrap()
    };
    for s in Strategy::FIG5 {
        // Plan each strategy's forward pass once; the 5-seed batch then
        // rides the hot path (weights packed once, plans reused).
        let mut engine = Engine::new();
        let plan = VitPlan::build(&mut engine, &gpu, &model, s, &exec, None);
        let mut agree = 0u64;
        let mut worst = 0i32;
        for seed in 0..batch {
            let x = model.synthetic_input(1000 + seed);
            let want = vitbit_vit::reference::forward(&model, &x);
            let run = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x);
            if argmax(&run.logits) == argmax(&want) {
                agree += 1;
            }
            let dev = run
                .logits
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .map(|(a, b)| (a - b).abs())
                .max()
                .unwrap_or(0);
            worst = worst.max(dev);
        }
        let _ = writeln!(
            out,
            "{:<9} {:>5}/{:<2} {:>12}",
            s.name(),
            agree,
            batch,
            worst
        );
    }
    let _ = writeln!(
        out,
        "(TC/IC/Tacker are bit-exact by construction; the FP-sharing methods
         deviate only through the float softmax normalization)"
    );
    out
}

/// Extension X1 (paper future work): packing-factor sweep over bitwidths.
pub fn bitwidth_sweep(opts: &HarnessOpts) -> String {
    let mut out = String::from(
        "Extension X1 — bitwidth sweep (packed vs zero-masked IC GEMM, guarded policy)\n",
    );
    let _ = writeln!(
        out,
        "{:<4} {:>6} {:>6} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "bits", "lanes", "chunk", "gain*", "IC cyc", "packed cyc", "speedup", "int red."
    );
    let mut gpu = opts.gpu();
    let (m, n, k) = (197usize, 768usize, 768usize);
    for bw in [4u32, 5, 6, 7, 8] {
        let spec = PackSpec::guarded(bw, bw).expect("valid");
        let hi = ((1i32 << (bw - 1)) - 1) as i8;
        let a = gen::uniform_i8(m, k, -hi - 1, hi, 11);
        let b = gen::uniform_i8(k, n, -hi - 1, hi, 12);
        gpu.cold_caches();
        let ic = run_ic(&mut gpu, &a, &b).expect("gemm");
        gpu.cold_caches();
        let pk = run_packed(&mut gpu, &a, &b, &spec).expect("gemm");
        assert_eq!(ic.c, pk.c, "packed GEMM must stay exact at {bw} bits");
        let _ = writeln!(
            out,
            "{:<4} {:>6} {:>6} {:>7.2}x {:>10} {:>10} {:>8.2}x {:>8.2}x",
            bw,
            spec.lanes,
            spec.chunk_len(),
            spec.packing_gain(),
            ic.stats.cycles,
            pk.stats.cycles,
            ic.stats.cycles as f64 / pk.stats.cycles as f64,
            ic.stats.issued.int as f64 / pk.stats.issued.int as f64,
        );
    }
    let _ = writeln!(
        out,
        "*gain = theoretical INT-instruction reduction of the guarded policy"
    );
    out
}

/// Ablation X2a: guarded vs paper packing policy (exactness and cost).
pub fn ablation_policy(opts: &HarnessOpts) -> String {
    let mut out = String::from("Ablation X2a — guarded vs paper packing policy\n");
    let mut gpu = opts.gpu();
    let (m, n, k) = (64usize, 512usize, 512usize);
    for bw in [6u32, 8] {
        let hi = ((1i32 << (bw - 1)) - 1) as i8;
        let a = gen::uniform_i8(m, k, -hi - 1, hi, 21);
        let b = gen::uniform_i8(k, n, -hi - 1, hi, 22);
        let reference = run_ic(&mut gpu, &a, &b).expect("gemm").c;
        for policy in [PackPolicy::Guarded, PackPolicy::Paper] {
            let spec = match policy {
                PackPolicy::Guarded => PackSpec::guarded(bw, bw).expect("valid"),
                PackPolicy::Paper => PackSpec::paper(bw).expect("valid"),
            };
            gpu.cold_caches();
            let pk = run_packed(&mut gpu, &a, &b, &spec).expect("gemm");
            let exact = pk.c == reference;
            let _ = writeln!(
                out,
                "INT{bw} {policy:?}: cycles {:>8}, int insts {:>9}, exact: {exact} (safe K = {})",
                pk.stats.cycles,
                pk.stats.issued.int,
                spec.max_safe_k(),
            );
        }
    }
    let _ = writeln!(
        out,
        "(The paper's literal Figure-3 policy wraps lanes for K beyond its safe\n length; the guarded policy spends spill instructions to stay exact.)"
    );
    out
}

/// Ablation X2b: Tensor:CUDA ratio sweep for the VitBit fused GEMM.
pub fn ablation_ratio(opts: &HarnessOpts) -> String {
    let exec = ExecConfig::guarded(opts.bitwidth);
    let mut out = String::from("Ablation X2b — Tensor:CUDA split ratio m for VitBit GEMM\n");
    let _ = writeln!(out, "{:<6} {:>10} {:>9}", "m : 1", "cycles", "vs TC");
    let mut gpu = opts.gpu();
    let (m, n, k) = LINEAR_SHAPE;
    let hi = ((1i32 << (opts.bitwidth - 1)) - 1) as i8;
    let a = gen::uniform_i8(m, k, -hi - 1, hi, 31);
    let b = gen::uniform_i8(k, n, -hi - 1, hi, 32);
    gpu.cold_caches();
    let tc = vitbit_kernels::gemm::run_tc(&mut gpu, &a, &b)
        .expect("gemm")
        .stats
        .cycles as f64;
    let mut engine = Engine::new();
    for mr in [1u32, 2, 3, 4, 6, 8] {
        gpu.cold_caches();
        // One engine plan per ratio: the ratio is part of the plan key, so
        // each sweep point resolves its own column split and geometry.
        let mut desc =
            GemmDesc::from_exec(Strategy::VitBit, &exec, &gpu, m, k, n, Some(u64::from(mr)));
        desc.ratio = Some(CoreRatio { tc: mr, cuda: 1 });
        desc.adaptive = false; // sweep every point; no measure-and-choose
        let outg = engine.run(&mut gpu, desc, &a, &b).expect("run");
        let _ = writeln!(
            out,
            "{:<6} {:>10} {:>8.2}x",
            format!("{mr} : 1"),
            outg.stats.cycles,
            tc / outg.stats.cycles as f64
        );
    }
    let _ = writeln!(out, "(paper picks m = 4 from the initial study)");
    out
}

/// Ablation X2c: warp-scheduler policy (GTO vs LRR) on the Table-3 kernels.
///
/// GTO (the default, what Ampere approximates) keeps issuing from the last
/// warp until it stalls; LRR rotates the starting candidate every cycle.
/// The comparison shows how sensitive each kernel class is to intra-SM
/// scheduling: latency-bound kernels with long dependent chains prefer GTO
/// (it keeps one warp's operands in flight), while issue-bound kernels with
/// abundant ready warps are largely indifferent.
pub fn ablation_sched(opts: &HarnessOpts) -> String {
    use vitbit_sim::SchedPolicy;
    let exec = ExecConfig::guarded(opts.bitwidth);
    let mut out = String::from("Ablation X2c — warp scheduler policy (GTO vs LRR)\n");
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>12} {:>9}",
        "kernel", "GTO cycles", "LRR cycles", "LRR/GTO"
    );
    let (m, n, k) = LINEAR_SHAPE;
    let hi = ((1i32 << (opts.bitwidth - 1)) - 1) as i8;
    let a = gen::uniform_i8(m, k, -hi - 1, hi, 41);
    let b = gen::uniform_i8(k, n, -hi - 1, hi, 42);
    let run_both = |name: &str, f: &mut dyn FnMut(&mut Gpu) -> u64, out: &mut String| {
        let mut cycles = [0u64; 2];
        for (i, sched) in [SchedPolicy::Gto, SchedPolicy::Lrr].into_iter().enumerate() {
            let mut cfg = opts.orin_config();
            cfg.sched = sched;
            let mut gpu = Gpu::new(cfg, 256 << 20);
            gpu.cold_caches();
            cycles[i] = f(&mut gpu);
        }
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>8.2}x",
            name,
            cycles[0],
            cycles[1],
            cycles[1] as f64 / cycles[0] as f64
        );
    };
    run_both(
        "TC GEMM",
        &mut |g| {
            vitbit_kernels::gemm::run_tc(g, &a, &b)
                .expect("gemm")
                .stats
                .cycles
        },
        &mut out,
    );
    run_both(
        "IC GEMM",
        &mut |g| run_ic(g, &a, &b).expect("gemm").stats.cycles,
        &mut out,
    );
    run_both(
        "packed GEMM (VitBit)",
        &mut |g| {
            run_packed(g, &a, &b, &exec.spec)
                .expect("gemm")
                .stats
                .cycles
        },
        &mut out,
    );
    let _ = writeln!(
        out,
        "(GTO is the simulator default; the ratio quantifies scheduling\n sensitivity of each kernel class in this machine model.)"
    );
    out
}

/// Extension S — the static instruction scheduler, measured end to end:
/// every Table-3 strategy's forward pass with kernel scheduling off and
/// on (verify-gated). Scheduling only reorders issue, so logits must be
/// bit-identical and the issued-instruction count unchanged; cycles,
/// IPC and the dual-issue ratio quantify the pipe-overlap win.
pub fn sched_report(opts: &HarnessOpts) -> String {
    let mut base_opts = *opts;
    base_opts.sched = false;
    let mut sched_opts = *opts;
    sched_opts.sched = true;
    let base = VitSuite::measure(&base_opts);
    let sched = VitSuite::measure(&sched_opts);

    let agg = |run: &vitbit_vit::VitRun| {
        let (mut cycles, mut issued, mut dual) = (0u64, 0u64, 0u64);
        for t in &run.timings {
            cycles += t.stats.cycles;
            issued += t.stats.issued.total();
            dual += t.stats.dual_issue_cycles;
        }
        (cycles, issued, dual)
    };
    let pct = |part: u64, whole: u64| {
        if whole == 0 {
            0.0
        } else {
            100.0 * part as f64 / whole as f64
        }
    };

    let mut out = String::from("Extension S — static instruction scheduling of emitted kernels\n");
    let _ = writeln!(
        out,
        "{:<9} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}",
        "strategy",
        "cycles off",
        "cycles on",
        "speedup",
        "ipc off",
        "ipc on",
        "dual%off",
        "dual%on",
        "sch-a",
        "sch-r",
        "bitid"
    );
    for (s, run_off) in &base.runs {
        let run_on = sched.run(*s);
        let (c0, i0, d0) = agg(run_off);
        let (c1, i1, d1) = agg(run_on);
        let st = sched
            .plan_stats
            .iter()
            .find(|(x, _)| x == s)
            .map(|(_, st)| *st)
            .unwrap_or_default();
        let bitid = run_off.logits == run_on.logits && i0 == i1;
        let _ = writeln!(
            out,
            "{:<9} {:>12} {:>12} {:>7.3}x {:>8.3} {:>8.3} {:>8.2} {:>8.2} {:>6} {:>6} {:>6}",
            s.name(),
            c0,
            c1,
            c0 as f64 / c1.max(1) as f64,
            i0 as f64 / c0.max(1) as f64,
            i1 as f64 / c1.max(1) as f64,
            pct(d0, i0),
            pct(d1, i1),
            st.sched_applied,
            st.sched_rejected,
            if bitid { "yes" } else { "NO" }
        );
    }
    let _ = writeln!(
        out,
        "(sch-a / sch-r = distinct programs the engine adopted / declined after\n re-verification; \"bitid\" requires identical logits and issue counts.)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reports_render() {
        let t1 = table1();
        assert!(t1.contains("INT8") && t1.contains("131"));
        let t3 = table3();
        assert!(t3.contains("VitBit") && t3.contains("T,C"));
        let t2 = table2(&HarnessOpts::default());
        assert!(t2.contains("ViT-Base"));
    }
}
