//! Shared ViT measurement suite: runs the model once per strategy and lets
//! every figure read from the same measurements.

use vitbit_exec::{Engine, EngineStats, ExecConfig, Strategy};
use vitbit_sim::{Gpu, OrinConfig, SimMode};
use vitbit_vit::{run_vit_planned, ViTConfig, ViTModel, VitPlan, VitRun};

/// Harness options from the `figures` CLI.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Encoder blocks to simulate per strategy (the 12 ViT blocks are
    /// homogeneous, so one or two representative blocks reproduce every
    /// normalized figure; `None` simulates all twelve).
    pub blocks: Option<usize>,
    /// Use a reduced model (half dims) for quick runs.
    pub quick: bool,
    /// Code bitwidth (headline 6; Figure 3(b) covers 6..=8 at two lanes).
    pub bitwidth: u32,
    /// Cycle-loop flavour (`--sim-mode serial|parallel`).
    pub sim_mode: SimMode,
    /// Worker threads for the parallel loop (`--threads N`; `None` = auto).
    pub threads: Option<u32>,
    /// Event-horizon fast-forward (`--fast-forward on|off`). Either setting
    /// produces bit-identical figures; off is the differential oracle.
    pub fast_forward: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        let cfg = OrinConfig::jetson_agx_orin();
        Self {
            blocks: Some(1),
            quick: false,
            bitwidth: 6,
            sim_mode: cfg.sim_mode,
            threads: None,
            fast_forward: cfg.fast_forward,
        }
    }
}

impl HarnessOpts {
    /// The full-Orin machine config with the CLI's simulator knobs applied.
    pub fn orin_config(&self) -> OrinConfig {
        let mut cfg = OrinConfig::jetson_agx_orin();
        cfg.sim_mode = self.sim_mode;
        cfg.sim_threads = self.threads;
        cfg.fast_forward = self.fast_forward;
        cfg
    }

    /// A full-Orin GPU (256 MiB arena) honouring the simulator knobs.
    pub fn gpu(&self) -> Gpu {
        Gpu::new(self.orin_config(), 256 << 20)
    }

    /// The model configuration these options select.
    pub fn vit_config(&self) -> ViTConfig {
        if self.quick {
            ViTConfig {
                blocks: 2,
                dim: 384,
                heads: 6,
                head_dim: 64,
                mlp_dim: 768,
                tokens: 64,
                classes: 50,
                bitwidth: self.bitwidth,
            }
        } else {
            ViTConfig::base_with_bitwidth(self.bitwidth)
        }
    }
}

/// ViT runs per strategy, measured once and shared across figures.
pub struct VitSuite {
    /// The model used.
    pub model: ViTModel,
    /// Execution config (packing spec, bitwidth).
    pub exec: ExecConfig,
    /// `(strategy, run)` pairs in `Strategy::ALL` order.
    pub runs: Vec<(Strategy, VitRun)>,
    /// Per-strategy engine counters (`figures --plan-stats`): plan-cache
    /// hits/misses and build work of the strategy's forward pass.
    pub plan_stats: Vec<(Strategy, EngineStats)>,
}

impl VitSuite {
    /// Measures all seven strategies.
    pub fn measure(opts: &HarnessOpts) -> Self {
        Self::measure_strategies(opts, &Strategy::ALL)
    }

    /// Measures a subset of strategies. Each strategy's forward pass is
    /// planned on a fresh engine (plan once), then executed — the same
    /// launch sequence the historical one-shot driver produced.
    pub fn measure_strategies(opts: &HarnessOpts, strategies: &[Strategy]) -> Self {
        let cfg = opts.vit_config();
        let model = ViTModel::new(cfg, 2024);
        let exec = ExecConfig::guarded(cfg.bitwidth);
        let input = model.synthetic_input(7);
        let mut gpu = opts.gpu();
        let mut runs = Vec::new();
        let mut plan_stats = Vec::new();
        for &s in strategies {
            eprintln!("  [suite] running ViT under {} ...", s.name());
            let mut engine = Engine::new();
            let plan = VitPlan::build(&mut engine, &gpu, &model, s, &exec, opts.blocks);
            let run = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &input);
            plan_stats.push((s, engine.stats()));
            runs.push((s, run));
        }
        Self {
            model,
            exec,
            runs,
            plan_stats,
        }
    }

    /// The run of one strategy.
    ///
    /// # Panics
    /// Panics if the strategy was not measured.
    pub fn run(&self, s: Strategy) -> &VitRun {
        &self
            .runs
            .iter()
            .find(|(x, _)| *x == s)
            .unwrap_or_else(|| panic!("strategy {} not measured", s.name()))
            .1
    }
}
