//! Shared ViT measurement suite: runs the model once per strategy and lets
//! every figure read from the same measurements.

use vitbit_exec::{
    DeviceStatus, Engine, EngineStats, ExecConfig, GemmDesc, GpuPool, PoolStats, Strategy,
};
use vitbit_sim::{Gpu, OrinConfig, SimMode};
use vitbit_tensor::Matrix;
use vitbit_vit::{run_vit_planned, ViTConfig, ViTModel, VitPlan, VitRun};

/// Harness options from the `figures` CLI.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Encoder blocks to simulate per strategy (the 12 ViT blocks are
    /// homogeneous, so one or two representative blocks reproduce every
    /// normalized figure; `None` simulates all twelve).
    pub blocks: Option<usize>,
    /// Use a reduced model (half dims) for quick runs.
    pub quick: bool,
    /// Code bitwidth (headline 6; Figure 3(b) covers 6..=8 at two lanes).
    pub bitwidth: u32,
    /// Cycle-loop flavour (`--sim-mode serial|parallel`).
    pub sim_mode: SimMode,
    /// Worker threads for the parallel loop (`--threads N`; `None` = auto).
    pub threads: Option<u32>,
    /// Event-horizon fast-forward (`--fast-forward on|off`). Either setting
    /// produces bit-identical figures; off is the differential oracle.
    pub fast_forward: bool,
    /// Simulated devices in the serving pool (`--devices N`). Only the
    /// serving measurement shards; the figure measurements always run on
    /// one machine so historical figures stay bit-identical.
    pub devices: usize,
    /// Run the static instruction scheduler over emitted kernels
    /// (`--sched on|off`). When on, every engine installs the verifier's
    /// program check so candidates are re-proved before adoption; off
    /// reproduces the historical figures bit for bit.
    pub sched: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        let cfg = OrinConfig::jetson_agx_orin();
        Self {
            blocks: Some(1),
            quick: false,
            bitwidth: 6,
            sim_mode: cfg.sim_mode,
            threads: None,
            fast_forward: cfg.fast_forward,
            devices: 1,
            sched: false,
        }
    }
}

impl HarnessOpts {
    /// The full-Orin machine config with the CLI's simulator knobs applied.
    pub fn orin_config(&self) -> OrinConfig {
        let mut cfg = OrinConfig::jetson_agx_orin();
        cfg.sim_mode = self.sim_mode;
        cfg.sim_threads = self.threads;
        cfg.fast_forward = self.fast_forward;
        cfg
    }

    /// A full-Orin GPU (256 MiB arena) honouring the simulator knobs.
    pub fn gpu(&self) -> Gpu {
        Gpu::new(self.orin_config(), 256 << 20)
    }

    /// The model configuration these options select.
    pub fn vit_config(&self) -> ViTConfig {
        if self.quick {
            ViTConfig {
                blocks: 2,
                dim: 384,
                heads: 6,
                head_dim: 64,
                mlp_dim: 768,
                tokens: 64,
                classes: 50,
                bitwidth: self.bitwidth,
            }
        } else {
            ViTConfig::base_with_bitwidth(self.bitwidth)
        }
    }
}

/// ViT runs per strategy, measured once and shared across figures.
pub struct VitSuite {
    /// The model used.
    pub model: ViTModel,
    /// Execution config (packing spec, bitwidth).
    pub exec: ExecConfig,
    /// `(strategy, run)` pairs in `Strategy::ALL` order.
    pub runs: Vec<(Strategy, VitRun)>,
    /// Per-strategy engine counters (`figures --plan-stats`): plan-cache
    /// hits/misses and build work of the strategy's forward pass.
    pub plan_stats: Vec<(Strategy, EngineStats)>,
}

impl VitSuite {
    /// Measures all seven strategies.
    pub fn measure(opts: &HarnessOpts) -> Self {
        Self::measure_strategies(opts, &Strategy::ALL)
    }

    /// Measures a subset of strategies. Each strategy's forward pass is
    /// planned on a fresh engine (plan once), then executed — the same
    /// launch sequence the historical one-shot driver produced.
    pub fn measure_strategies(opts: &HarnessOpts, strategies: &[Strategy]) -> Self {
        let cfg = opts.vit_config();
        let model = ViTModel::new(cfg, 2024);
        let mut exec = ExecConfig::guarded(cfg.bitwidth);
        exec.schedule_kernels = opts.sched;
        let input = model.synthetic_input(7);
        let mut gpu = opts.gpu();
        let mut runs = Vec::new();
        let mut plan_stats = Vec::new();
        for &s in strategies {
            eprintln!("  [suite] running ViT under {} ...", s.name());
            let mut engine = Engine::new();
            if opts.sched {
                engine.set_program_check(vitbit_verify::program_checker());
            }
            let plan = VitPlan::build(&mut engine, &gpu, &model, s, &exec, opts.blocks);
            let run = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &input);
            plan_stats.push((s, engine.stats()));
            runs.push((s, run));
        }
        Self {
            model,
            exec,
            runs,
            plan_stats,
        }
    }

    /// The run of one strategy.
    ///
    /// # Panics
    /// Panics if the strategy was not measured.
    pub fn run(&self, s: Strategy) -> &VitRun {
        &self
            .runs
            .iter()
            .find(|(x, _)| *x == s)
            .unwrap_or_else(|| panic!("strategy {} not measured", s.name()))
            .1
    }
}

/// Per-device serving counters behind `figures --plan-stats --devices N`.
pub struct ServingMeasure {
    /// Devices the pool sharded over.
    pub devices: usize,
    /// One [`EngineStats`] per shard, device order.
    pub per_device: Vec<EngineStats>,
    /// Field-wise sum over all shards.
    pub total: EngineStats,
    /// Full per-device status: health state, quarantined plans,
    /// deadline misses and fault-injection observations.
    pub status: Vec<DeviceStatus>,
    /// Pool-level counters (evictions, failover, host answers, drains).
    pub pool: PoolStats,
}

/// A deterministic operand matrix (LCG fill over the full code range).
fn serving_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 15) as i8 - 7
    })
}

/// Routes two rounds of batched GEMM requests — the ViT Linear shapes of
/// the selected model config — through a [`GpuPool`] of `opts.devices`
/// shards and reports the per-device engine counters. The second round
/// re-serves every desc, so plan-affinity hits and steady-state replays
/// show up in the stats.
pub fn measure_serving(opts: &HarnessOpts) -> ServingMeasure {
    let cfg = opts.orin_config();
    let vit = opts.vit_config();
    let mut exec = ExecConfig::guarded(vit.bitwidth);
    exec.schedule_kernels = opts.sched;
    let mut pool = GpuPool::new(opts.devices, &cfg, 256 << 20);
    if opts.sched {
        pool = pool.with_program_check(vitbit_verify::program_checker());
    }
    // Descs capture the simulator knobs from a machine identical to the
    // pool's shards.
    let probe = Gpu::new(cfg, 256 << 20);
    let (t, d, mlp) = (vit.tokens, vit.dim, vit.mlp_dim);
    let sites: [(usize, usize, usize, Option<u64>); 5] = [
        (t, d, 3 * d, Some(0)), // fused qkv projection
        (t, d, d, Some(1)),     // attention out-projection
        (t, d, mlp, Some(2)),   // fc1
        (t, mlp, d, Some(3)),   // fc2
        (t, t, d, None),        // activation GEMM (probs x V, all heads)
    ];
    let batch = 3usize;
    for round in 0..2u64 {
        for (site, &(m, k, n, weight)) in sites.iter().enumerate() {
            let desc = GemmDesc::from_exec(Strategy::Tc, &exec, &probe, m, k, n, weight);
            let a_mats: Vec<Matrix<i8>> = (0..batch)
                .map(|i| serving_matrix(m, k, 100 * round + 10 * site as u64 + i as u64))
                .collect();
            let b_mat = serving_matrix(k, n, 7 + site as u64);
            let reqs: Vec<(&Matrix<i8>, &Matrix<i8>)> =
                a_mats.iter().map(|a| (a, &b_mat)).collect();
            pool.execute_batch(desc, &reqs)
                .expect("serving batch on an unverified desc cannot fail to prepare");
        }
    }
    ServingMeasure {
        devices: opts.devices,
        per_device: pool.device_stats(),
        total: pool.stats(),
        status: pool.device_status(),
        pool: pool.pool_stats(),
    }
}
