//! Shared ViT measurement suite: runs the model once per strategy and lets
//! every figure read from the same measurements.

use vitbit_exec::{ExecConfig, Strategy};
use vitbit_sim::Gpu;
use vitbit_vit::{run_vit, ViTConfig, ViTModel, VitRun};

/// Harness options from the `figures` CLI.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Encoder blocks to simulate per strategy (the 12 ViT blocks are
    /// homogeneous, so one or two representative blocks reproduce every
    /// normalized figure; `None` simulates all twelve).
    pub blocks: Option<usize>,
    /// Use a reduced model (half dims) for quick runs.
    pub quick: bool,
    /// Code bitwidth (headline 6; Figure 3(b) covers 6..=8 at two lanes).
    pub bitwidth: u32,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self {
            blocks: Some(1),
            quick: false,
            bitwidth: 6,
        }
    }
}

impl HarnessOpts {
    /// The model configuration these options select.
    pub fn vit_config(&self) -> ViTConfig {
        if self.quick {
            ViTConfig {
                blocks: 2,
                dim: 384,
                heads: 6,
                head_dim: 64,
                mlp_dim: 768,
                tokens: 64,
                classes: 50,
                bitwidth: self.bitwidth,
            }
        } else {
            ViTConfig::base_with_bitwidth(self.bitwidth)
        }
    }
}

/// ViT runs per strategy, measured once and shared across figures.
pub struct VitSuite {
    /// The model used.
    pub model: ViTModel,
    /// Execution config (packing spec, bitwidth).
    pub exec: ExecConfig,
    /// `(strategy, run)` pairs in `Strategy::ALL` order.
    pub runs: Vec<(Strategy, VitRun)>,
}

impl VitSuite {
    /// Measures all seven strategies.
    pub fn measure(opts: &HarnessOpts) -> Self {
        Self::measure_strategies(opts, &Strategy::ALL)
    }

    /// Measures a subset of strategies.
    pub fn measure_strategies(opts: &HarnessOpts, strategies: &[Strategy]) -> Self {
        let cfg = opts.vit_config();
        let model = ViTModel::new(cfg, 2024);
        let exec = ExecConfig::guarded(cfg.bitwidth);
        let input = model.synthetic_input(7);
        let mut gpu = Gpu::orin();
        let mut runs = Vec::new();
        for &s in strategies {
            eprintln!("  [suite] running ViT under {} ...", s.name());
            let run = run_vit(&mut gpu, &model, &input, s, &exec, opts.blocks);
            runs.push((s, run));
        }
        Self { model, exec, runs }
    }

    /// The run of one strategy.
    ///
    /// # Panics
    /// Panics if the strategy was not measured.
    pub fn run(&self, s: Strategy) -> &VitRun {
        &self
            .runs
            .iter()
            .find(|(x, _)| *x == s)
            .unwrap_or_else(|| panic!("strategy {} not measured", s.name()))
            .1
    }
}
