//! Regenerates every table and figure of the paper on the simulator.
//!
//! ```text
//! figures [EXPERIMENTS..] [--blocks N] [--full] [--quick] [--bitwidth B]
//!         [--sim-mode serial|parallel] [--threads N] [--fast-forward on|off]
//!
//! EXPERIMENTS: table1 table2 table3 study fig5 fig6 fig7 fig8 fig9 fig10
//!              accuracy bitwidth ablation sched_report  (default: all but
//!              sched_report, which measures every strategy twice)
//! --blocks N   simulate N encoder blocks per strategy (default 1)
//! --full       simulate all 12 blocks (slow)
//! --quick      reduced model dims for a fast smoke run
//! --bitwidth B code bitwidth (default 6)
//! --sim-mode   cycle-loop flavour (default from the machine config)
//! --threads N  worker threads for the parallel loop (default: auto)
//! --fast-forward on|off  event-horizon cycle skipping (default on; either
//!              setting yields bit-identical figures — off is the oracle)
//! --plan-stats print the plan/execute engine counters (plan-cache hits,
//!              misses, build work) of each strategy's forward pass, plus
//!              the per-device serving counters of a pool run (affinity
//!              hit rate, replays, recoveries, quarantines per shard)
//! --devices N  simulated GPUs in the serving pool (default 1; only the
//!              serving measurement shards — figures never do)
//! --sched on|off  static instruction scheduling of emitted kernels
//!              (default off; on installs the verifier's program check so
//!              every scheduled candidate is re-proved before adoption)
//! ```

use vitbit_bench::{experiments, HarnessOpts, VitSuite};
use vitbit_sim::SimMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = HarnessOpts::default();
    let mut picks: Vec<String> = Vec::new();
    let mut plan_stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--blocks" => {
                i += 1;
                opts.blocks = Some(args[i].parse().expect("--blocks N"));
            }
            "--full" => opts.blocks = None,
            "--quick" => opts.quick = true,
            "--bitwidth" => {
                i += 1;
                opts.bitwidth = args[i].parse().expect("--bitwidth B");
            }
            "--sim-mode" => {
                i += 1;
                opts.sim_mode = match args[i].as_str() {
                    "serial" => SimMode::Serial,
                    "parallel" => SimMode::Parallel,
                    other => panic!("--sim-mode serial|parallel, got {other}"),
                };
            }
            "--threads" => {
                i += 1;
                opts.threads = Some(args[i].parse().expect("--threads N"));
            }
            "--fast-forward" => {
                i += 1;
                opts.fast_forward = match args[i].as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--fast-forward on|off, got {other}"),
                };
            }
            "--plan-stats" => plan_stats = true,
            "--sched" => {
                i += 1;
                opts.sched = match args[i].as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--sched on|off, got {other}"),
                };
            }
            "--devices" => {
                i += 1;
                opts.devices = args[i].parse().expect("--devices N");
                assert!(opts.devices > 0, "--devices needs at least one device");
            }
            other => picks.push(other.to_string()),
        }
        i += 1;
    }
    if picks.is_empty() {
        picks = [
            "table1", "table2", "table3", "study", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "accuracy", "bitwidth", "ablation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let needs_suite = plan_stats || picks.iter().any(|p| p.starts_with("fig"));
    let suite = if needs_suite {
        eprintln!(
            "[figures] measuring ViT suite (blocks = {:?}, quick = {}) ...",
            opts.blocks, opts.quick
        );
        Some(VitSuite::measure(&opts))
    } else {
        None
    };

    for p in &picks {
        let report = match p.as_str() {
            "table1" => experiments::table1(),
            "table2" => experiments::table2(&opts),
            "table3" => experiments::table3(),
            "study" => experiments::study(&opts),
            "fig5" => experiments::fig5(suite.as_ref().expect("suite")),
            "fig6" => experiments::fig6(suite.as_ref().expect("suite")),
            "fig7" => experiments::fig7(suite.as_ref().expect("suite")),
            "fig8" => experiments::fig8(suite.as_ref().expect("suite")),
            "fig9" => experiments::fig9(suite.as_ref().expect("suite"), &opts),
            "fig10" => experiments::fig10(suite.as_ref().expect("suite")),
            "accuracy" => experiments::accuracy(&opts),
            "bitwidth" => experiments::bitwidth_sweep(&opts),
            "sched_report" => experiments::sched_report(&opts),
            "ablation" => {
                let mut s = experiments::ablation_policy(&opts);
                s.push('\n');
                s.push_str(&experiments::ablation_sched(&opts));
                s.push('\n');
                s.push_str(&experiments::ablation_ratio(&opts));
                s
            }
            other => format!("unknown experiment: {other}\n"),
        };
        println!("{report}");
        println!("{}", "-".repeat(72));
    }

    if plan_stats {
        let suite = suite.as_ref().expect("suite");
        println!("Plan/execute engine counters — one forward pass per strategy");
        println!(
            "{:<9} {:>10} {:>10} {:>13} {:>10} {:>7} {:>8} {:>6} {:>6} {:>6} {:>10} {:>6} {:>6}",
            "strategy",
            "plan hits",
            "misses",
            "build units",
            "executes",
            "faults",
            "retries",
            "fback",
            "quar",
            "dual%",
            "stall-cy",
            "sch-a",
            "sch-r"
        );
        for (s, st) in &suite.plan_stats {
            let run = suite.run(*s);
            let (mut dual, mut issued, mut stall) = (0u64, 0u64, 0u64);
            for t in &run.timings {
                dual += t.stats.dual_issue_cycles;
                issued += t.stats.issued.total();
                stall += t.stats.stall.total();
            }
            let dual_pct = if issued == 0 {
                0.0
            } else {
                100.0 * dual as f64 / issued as f64
            };
            println!(
                "{:<9} {:>10} {:>10} {:>13} {:>10} {:>7} {:>8} {:>6} {:>6} {:>6.2} {:>10} {:>6} {:>6}",
                s.name(),
                st.plan_cache_hits,
                st.plan_cache_misses,
                st.plan_build_units,
                st.executes,
                st.faults_detected,
                st.retries,
                st.fallbacks,
                st.quarantined_plans,
                dual_pct,
                stall,
                st.sched_applied,
                st.sched_rejected
            );
        }
        println!("{}", "-".repeat(72));

        let serving = vitbit_bench::measure_serving(&opts);
        println!(
            "Serving pool counters — {} device(s), plan-affinity sharding",
            serving.devices
        );
        print!(
            "{}",
            vitbit_plan::render_serving_table(&serving.status, &serving.pool)
        );
        println!("{}", "-".repeat(72));
    }
}
