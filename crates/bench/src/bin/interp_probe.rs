//! Issue-mix probe for the interp bench family (debug aid).
//!
//! Launches the acceptance workload (full-occupancy 197x768x768 TC GEMM,
//! the `gemm_tc_linear` family of `benches/sim_interp.rs`) once per rep
//! under the default interpreter and prints wall time plus the invariant
//! counters (cycles, per-pipe issue/busy, fast-forward skips). Useful when
//! profiling interpreter changes: `PROBE_REPS=30 cargo run --release -p
//! vitbit-bench --bin interp_probe` gives a single-family loop that perf
//! tools can attach to, without the bench harness's paired reference runs.
use vitbit_kernels::gemm::cuda::M_PAD;
use vitbit_kernels::gemm::tc::{
    tc_args, tc_gemm_program, tc_smem_bytes, tile_a_for_tc, TC_K_UNIT, TC_N_TILE,
};
use vitbit_kernels::shapes::{pad_matrix, pad_to};
use vitbit_sim::{Gpu, Kernel, OrinConfig};
use vitbit_tensor::gen;

fn main() {
    let (m, k, n) = (197usize, 768, 768);
    let mut gpu = Gpu::new(OrinConfig::jetson_agx_orin(), 32 << 20);
    let a = gen::uniform_i8(m, k, -32, 31, 5);
    let b = gen::uniform_i8(k, n, -32, 31, 6);
    let mp = pad_to(m, M_PAD);
    let np = pad_to(n, TC_N_TILE);
    let kp = pad_to(k, TC_K_UNIT);
    let a_pad = pad_matrix(&a, mp, kp + 2 * TC_K_UNIT);
    let b_pad = pad_matrix(&b, kp + 2 * TC_K_UNIT, np);
    let a_ptr = gpu.mem.upload_i8(&tile_a_for_tc(&a_pad)).addr;
    let b_ptr = gpu.mem.upload_i8(b_pad.as_slice()).addr;
    let c_dev = gpu.mem.alloc((mp * np * 4) as u32);
    let blocks_x = (np / TC_N_TILE) as u32;
    let blocks = blocks_x * (mp / 32) as u32;
    let kernel = Kernel::single(
        "gemm_tc",
        tc_gemm_program(2, 0).into_arc(),
        blocks,
        8,
        tc_smem_bytes(2),
        tc_args(
            a_ptr,
            b_ptr,
            c_dev.addr,
            blocks_x,
            kp as u32,
            np as u32,
            (mp * 16) as u32,
        ),
    );
    let reps: usize = std::env::var("PROBE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let t0 = std::time::Instant::now();
    let mut s = gpu.launch(&kernel).expect("launch");
    for _ in 1..reps {
        gpu.cold_caches();
        s = gpu.launch(&kernel).expect("launch");
    }
    println!("wall {:?} ({} reps)", t0.elapsed() / reps as u32, reps);
    println!("cycles {} blocks {}", s.cycles, s.blocks);
    println!("issued {:?} total {}", s.issued, s.issued.total());
    println!("busy {:?}", s.busy);
    println!(
        "skipped {} jumps {}",
        s.skipped_cycles, s.fast_forward_jumps
    );
    let prof = vitbit_sim::profile::snapshot();
    if prof.total_ns() > 0 {
        println!("exec profile (VITBIT_EXEC_PROFILE=1):");
        for i in 0..6 {
            if prof.calls[i] == 0 {
                continue;
            }
            println!(
                "  {:<6} {:>9.2}ms {:>8} calls {:>6.0}ns/call",
                vitbit_sim::profile::pipe_name(i),
                prof.ns[i] as f64 / 1e6,
                prof.calls[i],
                prof.ns[i] as f64 / prof.calls[i] as f64,
            );
        }
        let extra = vitbit_sim::profile::extra_ns();
        for (i, &ns) in extra.iter().enumerate() {
            println!(
                "  {:<12} {:>9.2}ms",
                vitbit_sim::profile::extra_name(i),
                ns as f64 / 1e6
            );
        }
    }
}
