//! Experiment harness: every table and figure of the paper, regenerated.
//!
//! The `figures` binary drives [`experiments`]; each experiment prints the
//! paper's reported values next to the values measured on the simulator, so
//! `EXPERIMENTS.md` can be regenerated from one run.

pub mod experiments;
pub mod suite;
pub mod timing;

pub use suite::{measure_serving, HarnessOpts, ServingMeasure, VitSuite};
