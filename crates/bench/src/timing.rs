//! Minimal wall-clock benchmarking harness.
//!
//! Replaces the Criterion dependency (unavailable in hermetic builds) with
//! a warmup + median-of-samples timer. Each `[[bench]]` target declares
//! `harness = false` and drives this module from a plain `main`.

use std::time::{Duration, Instant};

/// One timed benchmark: `warmup` untimed runs, then `samples` timed runs.
/// Returns the per-run median and prints a one-line report.
pub fn bench<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(samples > 0);
    std::hint::black_box(f()); // warmup + forces lazy init
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort();
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!(
        "{name:<48} median {:>10.3?}  min {:>10.3?}  max {:>10.3?}  ({samples} samples)",
        median, lo, hi
    );
    median
}

/// Nanoseconds-per-unit helper for throughput-style reporting.
pub fn per_unit(total: Duration, units: u64) -> f64 {
    total.as_nanos() as f64 / units.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_median() {
        let d = bench("noop_spin", 3, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn per_unit_divides() {
        let r = per_unit(Duration::from_nanos(1000), 10);
        assert!((r - 100.0).abs() < 1e-9);
        assert_eq!(per_unit(Duration::from_nanos(5), 0), 5.0);
    }
}
