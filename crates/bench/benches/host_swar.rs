//! Host-CPU SWAR benches: the packing technique applied to the machine
//! running the tests, on 32-bit and 64-bit registers.
//!
//! Interpretation note: the scalar reference auto-vectorizes on modern
//! x86 (8-16 lane SIMD), so wall-clock parity with `packed_u64` already
//! demonstrates the ~`wide_lanes`x *instruction-count* reduction that is
//! the paper's claim; on scalar ISAs — like the GPU INT pipe the paper
//! targets — that reduction is the speedup.

use std::hint::black_box;
use vitbit_bench::timing::bench;
use vitbit_core::host::{packed_gemm, packed_gemm_wide};
use vitbit_core::policy::PackSpec;
use vitbit_tensor::{gen, refgemm};

fn main() {
    for &bw in &[4u32, 6] {
        let spec = PackSpec::guarded(bw, bw).expect("packable");
        let hi = ((1i32 << (bw - 1)) - 1) as i8;
        let (m, n, k) = (64usize, 256usize, 256usize);
        let a = gen::uniform_i8(m, k, -hi - 1, hi, 1);
        let b = gen::uniform_i8(k, n, -hi - 1, hi, 2);
        bench(&format!("host_swar_gemm/scalar_reference/{bw}"), 10, || {
            refgemm::gemm_i8_i32(black_box(&a), black_box(&b))
        });
        bench(&format!("host_swar_gemm/packed_u32/{bw}"), 10, || {
            packed_gemm(black_box(&a), black_box(&b), &spec).unwrap()
        });
        bench(&format!("host_swar_gemm/packed_u64/{bw}"), 10, || {
            packed_gemm_wide(black_box(&a), black_box(&b), &spec).unwrap()
        });
    }
}
