//! Simulated-GPU GEMM strategy benches (the Table-3 family at micro
//! scale): each iteration simulates one kernel launch; Criterion tracks
//! the wall-clock cost of the simulation while the returned value is the
//! simulated cycle count the paper's figures are built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vitbit_exec::{ExecConfig, Strategy};
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::gen;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_gemm_strategies");
    group.sample_size(10);
    let cfg = ExecConfig::int6();
    // A reduced Linear shape keeps each simulated launch fast.
    let a = gen::uniform_i8(64, 256, -32, 31, 1);
    let b = gen::uniform_i8(256, 256, -32, 31, 2);
    for s in Strategy::ALL {
        group.bench_with_input(BenchmarkId::new("gemm64x256x256", s.name()), &s, |bch, s| {
            let mut gpu = Gpu::new(OrinConfig::test_small(), 64 << 20);
            bch.iter(|| s.run_gemm(&mut gpu, black_box(&a), black_box(&b), &cfg).stats.cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
