//! Simulated-GPU GEMM strategy benches (the Table-3 family at micro
//! scale): each iteration simulates one kernel launch; the harness tracks
//! the wall-clock cost of the simulation while the returned value is the
//! simulated cycle count the paper's figures are built from.

use std::hint::black_box;
use vitbit_bench::timing::bench;
use vitbit_exec::{Engine, ExecConfig, GemmDesc, Strategy};
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::gen;

fn main() {
    let cfg = ExecConfig::int6();
    // A reduced Linear shape keeps each simulated launch fast.
    let a = gen::uniform_i8(64, 256, -32, 31, 1);
    let b = gen::uniform_i8(256, 256, -32, 31, 2);
    for s in Strategy::ALL {
        let mut gpu = Gpu::new(OrinConfig::test_small(), 64 << 20);
        // Plan once per strategy; the timed iterations ride the engine's
        // hot path, which is what a deployed forward pass pays.
        let mut engine = Engine::new();
        let mut desc = GemmDesc::from_exec(s, &cfg, &gpu, 64, 256, 256, Some(1));
        desc.adaptive = false; // always bench the strategy itself
        let id = engine.prepare(desc).expect("prepare");
        bench(
            &format!("sim_gemm_strategies/gemm64x256x256/{}", s.name()),
            10,
            || {
                engine
                    .execute(&mut gpu, id, black_box(&a), black_box(&b))
                    .expect("execute")
                    .stats
                    .cycles
            },
        );
    }
}
