//! Figure-7 micro-benches: the attention block's CUDA-core kernels in their
//! IC / FC / IC+FC / VitBit variants on the simulated GPU.

use std::hint::black_box;
use vitbit_bench::timing::bench;
use vitbit_core::policy::PackSpec;
use vitbit_kernels::elementwise::{run_layernorm, run_map, run_softmax, EwVariant, MapOp};
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::gen;

fn variants() -> Vec<(&'static str, EwVariant)> {
    let spec = PackSpec::guarded(6, 6).expect("packable");
    vec![
        ("IC", EwVariant::Ic),
        ("FC", EwVariant::Fc),
        ("IC+FC", EwVariant::IcFc),
        ("VitBit", EwVariant::VitBit(spec)),
    ]
}

fn main() {
    let x = gen::uniform_i8(1, 16 * 1024, -32, 31, 1).into_vec();
    let y = gen::uniform_i8(1, 16 * 1024, -32, 31, 2).into_vec();
    let rows = gen::uniform_i8(64, 128, -32, 31, 3);

    for (name, v) in variants() {
        let mut gpu = Gpu::new(OrinConfig::test_small(), 32 << 20);
        bench(&format!("sim_cuda_kernels/shiftgelu/{name}"), 10, || {
            run_map(&mut gpu, MapOp::Gelu, v, 6, black_box(&x), None)
                .stats
                .cycles
        });
        let mut gpu = Gpu::new(OrinConfig::test_small(), 32 << 20);
        bench(&format!("sim_cuda_kernels/residual_add/{name}"), 10, || {
            run_map(&mut gpu, MapOp::Add, v, 6, black_box(&x), Some(&y))
                .stats
                .cycles
        });
        let mut gpu = Gpu::new(OrinConfig::test_small(), 32 << 20);
        bench(&format!("sim_cuda_kernels/shiftmax/{name}"), 10, || {
            run_softmax(&mut gpu, black_box(&rows), v, 6).stats.cycles
        });
        let mut gpu = Gpu::new(OrinConfig::test_small(), 32 << 20);
        bench(&format!("sim_cuda_kernels/ilayernorm/{name}"), 10, || {
            run_layernorm(&mut gpu, black_box(&rows), 64, 0, v, 6)
                .stats
                .cycles
        });
    }
}
