//! Figure-7 micro-benches: the attention block's CUDA-core kernels in their
//! IC / FC / IC+FC / VitBit variants on the simulated GPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vitbit_core::policy::PackSpec;
use vitbit_kernels::elementwise::{run_layernorm, run_map, run_softmax, EwVariant, MapOp};
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::gen;

fn variants() -> Vec<(&'static str, EwVariant)> {
    let spec = PackSpec::guarded(6, 6).expect("packable");
    vec![
        ("IC", EwVariant::Ic),
        ("FC", EwVariant::Fc),
        ("IC+FC", EwVariant::IcFc),
        ("VitBit", EwVariant::VitBit(spec)),
    ]
}

fn bench_cuda_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_cuda_kernels");
    group.sample_size(10);
    let x = gen::uniform_i8(1, 16 * 1024, -32, 31, 1).into_vec();
    let y = gen::uniform_i8(1, 16 * 1024, -32, 31, 2).into_vec();
    let rows = gen::uniform_i8(64, 128, -32, 31, 3);

    for (name, v) in variants() {
        group.bench_with_input(BenchmarkId::new("shiftgelu", name), &v, |bch, v| {
            let mut gpu = Gpu::new(OrinConfig::test_small(), 32 << 20);
            bch.iter(|| run_map(&mut gpu, MapOp::Gelu, *v, 6, black_box(&x), None).stats.cycles)
        });
        group.bench_with_input(BenchmarkId::new("residual_add", name), &v, |bch, v| {
            let mut gpu = Gpu::new(OrinConfig::test_small(), 32 << 20);
            bch.iter(|| {
                run_map(&mut gpu, MapOp::Add, *v, 6, black_box(&x), Some(&y)).stats.cycles
            })
        });
        group.bench_with_input(BenchmarkId::new("shiftmax", name), &v, |bch, v| {
            let mut gpu = Gpu::new(OrinConfig::test_small(), 32 << 20);
            bch.iter(|| run_softmax(&mut gpu, black_box(&rows), *v, 6).stats.cycles)
        });
        group.bench_with_input(BenchmarkId::new("ilayernorm", name), &v, |bch, v| {
            let mut gpu = Gpu::new(OrinConfig::test_small(), 32 << 20);
            bch.iter(|| run_layernorm(&mut gpu, black_box(&rows), 64, 0, *v, 6).stats.cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cuda_kernels);
criterion_main!(benches);
