//! Simulator micro-benchmarks: raw event-loop throughput (simulated warp
//! instructions per wall second) and packing-policy ablations (guarded vs
//! paper policy cost on the host SWAR path).

use std::hint::black_box;
use vitbit_bench::timing::bench;
use vitbit_core::policy::{PackPolicy, PackSpec};
use vitbit_core::swar::PackedAcc;
use vitbit_sim::isa::{ICmp, MemWidth, SReg, Src};
use vitbit_sim::program::ProgramBuilder;
use vitbit_sim::{Gpu, Kernel, OrinConfig};

/// A math-dense kernel: 64 iterations of 8 independent IMAD chains.
fn math_kernel(blocks: u32, warps: u32) -> Kernel {
    let mut p = ProgramBuilder::new("microbench_math");
    let acc = p.alloc_n(8);
    let i = p.alloc();
    let pr = p.alloc_pred();
    p.mov(i, Src::Imm(0));
    p.label_here("loop");
    for r in 0..8u16 {
        let reg = vitbit_sim::isa::Reg(acc.0 + r as u8);
        p.imad(reg, reg.into(), Src::Imm(3), Src::Imm(1));
    }
    p.iadd(i, i.into(), Src::Imm(1));
    p.isetp(pr, i.into(), Src::Imm(64), ICmp::Lt);
    p.bra_if("loop", pr, true);
    p.exit();
    Kernel::single("micro_math", p.build().into_arc(), blocks, warps, 0, vec![])
}

/// A memory-streaming kernel: 64 strided loads per thread.
fn stream_kernel(gpu: &mut Gpu, blocks: u32) -> Kernel {
    let buf = gpu.mem.alloc(blocks * 32 * 4 * 64 + 128 * 64);
    let mut p = ProgramBuilder::new("microbench_stream");
    let base = p.alloc();
    let tid = p.alloc();
    let ctaid = p.alloc();
    let addr = p.alloc();
    let v = p.alloc();
    let i = p.alloc();
    let pr = p.alloc_pred();
    p.ldc(base, 0);
    p.sreg(tid, SReg::Tid);
    p.sreg(ctaid, SReg::Ctaid);
    p.imad(addr, ctaid.into(), Src::Imm(32 * 4), base.into());
    p.imad(addr, tid.into(), Src::Imm(4), addr.into());
    p.mov(i, Src::Imm(0));
    p.label_here("loop");
    p.ldg(v, addr, 0, MemWidth::B32);
    p.iadd(addr, addr.into(), Src::Imm(128));
    p.iadd(i, i.into(), Src::Imm(1));
    p.isetp(pr, i.into(), Src::Imm(64), ICmp::Lt);
    p.bra_if("loop", pr, true);
    p.exit();
    Kernel::single(
        "micro_stream",
        p.build().into_arc(),
        blocks,
        1,
        0,
        vec![buf.addr],
    )
}

fn bench_sim_throughput() {
    let mut gpu = Gpu::new(OrinConfig::test_small(), 16 << 20);
    let k = math_kernel(16, 8);
    bench("sim_throughput/math_kernel_16_blocks", 10, || {
        black_box(gpu.launch(&k).expect("launch").issued.total())
    });
    let mut gpu = Gpu::new(OrinConfig::test_small(), 64 << 20);
    let k = stream_kernel(&mut gpu, 16);
    bench("sim_throughput/stream_kernel_16_blocks", 10, || {
        black_box(gpu.launch(&k).expect("launch").cycles)
    });
}

fn bench_packing_policies() {
    for (name, policy) in [
        ("guarded", PackPolicy::Guarded),
        ("paper", PackPolicy::Paper),
    ] {
        let spec = match policy {
            PackPolicy::Guarded => PackSpec::guarded(6, 6).unwrap(),
            PackPolicy::Paper => PackSpec::paper(6).unwrap(),
        };
        bench(
            &format!("packing_policy_ablation/mac_stream/{name}"),
            20,
            || {
                let mut acc = PackedAcc::new(spec);
                for i in 0..4096u32 {
                    acc.mac(black_box(i % 63), black_box(0x003F_003F));
                }
                acc.finish()
            },
        );
    }
}

fn main() {
    bench_sim_throughput();
    bench_packing_policies();
}
