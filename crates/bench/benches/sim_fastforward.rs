//! Wall-clock effect of event-horizon fast-forward, per kernel family.
//!
//! Each family runs with `fast_forward` off (the stepping oracle) and on,
//! asserting identical simulated cycle counts along the way — the bench
//! doubles as a coarse differential check. GEMM families time
//! `Gpu::launch` directly (kernel built and uploaded once, caches flushed
//! between samples) so the number isolates the cycle loop from host-side
//! padding/tiling; driver-level families (elementwise, ViT block) time the
//! whole call, which is what the figures harness pays. Results go to
//! stdout and to `BENCH_sim.json` at the repo root; EXPERIMENTS.md records
//! a reference run.
//!
//! The fast-forward win is occupancy-shaped: a tall-skinny Tensor-core
//! GEMM leaves each SM one resident block that spends most cycles blocked
//! on L2/DRAM (skip ratio > 0.6), while the full ViT Linear shape keeps
//! every SM issuing nearly every cycle (ratio ~0) — the bench covers both
//! ends plus the issue-bound elementwise family, which must not regress.

use std::hint::black_box;
use std::time::Duration;
use vitbit_bench::timing::bench;
use vitbit_core::policy::PackSpec;
use vitbit_exec::{ExecConfig, Strategy};
use vitbit_kernels::elementwise::{run_map, EwVariant, MapOp};
use vitbit_kernels::gemm::cuda::M_PAD;
use vitbit_kernels::gemm::tc::{
    tc_args, tc_gemm_program, tc_smem_bytes, tile_a_for_tc, TC_K_UNIT, TC_N_TILE,
};
use vitbit_kernels::shapes::{pad_matrix, pad_to};
use vitbit_plan::{Engine, GemmDesc};
use vitbit_sim::{Gpu, Kernel, KernelStats, OrinConfig};
use vitbit_tensor::gen;
use vitbit_vit::{run_vit_planned, ViTConfig, ViTModel, VitPlan};

fn orin_gpu(fast_forward: bool, mem_bytes: u32) -> Gpu {
    let mut cfg = OrinConfig::jetson_agx_orin();
    cfg.fast_forward = fast_forward;
    Gpu::new(cfg, mem_bytes)
}

/// One family's paired measurement.
struct Family {
    name: &'static str,
    workload: String,
    off_wall: Duration,
    on_wall: Duration,
    on: KernelStats,
    /// Host-side plan-build work (policy resolution + weight staging) the
    /// engine paid before the timed executes; 0 for direct-launch families.
    build_units: u64,
}

impl Family {
    fn speedup(&self) -> f64 {
        self.off_wall.as_secs_f64() / self.on_wall.as_secs_f64().max(1e-12)
    }
}

/// Times one closure under both fast-forward settings and checks the skip
/// is invisible in the simulated cycle count.
fn measure(
    name: &'static str,
    workload: String,
    mut run: impl FnMut(bool) -> (Duration, KernelStats, u64),
) -> Family {
    let (off_wall, off, _) = run(false);
    let (on_wall, on, build_units) = run(true);
    assert_eq!(
        off.cycles, on.cycles,
        "{name}: fast-forward changed the simulated cycle count"
    );
    assert_eq!(off.skipped_cycles, 0, "{name}: oracle must not skip");
    println!(
        "  {name}: cycles {} skip ratio {:.3} ({} jumps) speedup {:.2}x",
        on.cycles,
        on.skip_ratio(),
        on.fast_forward_jumps,
        off_wall.as_secs_f64() / on_wall.as_secs_f64().max(1e-12),
    );
    Family {
        name,
        workload,
        off_wall,
        on_wall,
        on,
        build_units,
    }
}

/// Builds the standalone Tensor-core GEMM launch exactly as
/// `gemm::tc::run_tc` does, but returns the ready-to-launch kernel so the
/// bench can time `Gpu::launch` alone, without the per-call host padding,
/// slab tiling and arena reset of the driver. `row_blocks` caps the grid's
/// row dimension: 1 leaves a single resident block (the latency-bound
/// corner where one SM chases DRAM while thirteen idle), the driver's
/// `mp / 32` covers every output row.
fn tc_launch(gpu: &mut Gpu, m: usize, k: usize, n: usize, row_blocks: u32) -> Kernel {
    let a = gen::uniform_i8(m, k, -32, 31, 5);
    let b = gen::uniform_i8(k, n, -32, 31, 6);
    let mp = pad_to(m, M_PAD);
    let np = pad_to(n, TC_N_TILE);
    let kp = pad_to(k, TC_K_UNIT);
    let a_pad = pad_matrix(&a, mp, kp + 2 * TC_K_UNIT);
    let b_pad = pad_matrix(&b, kp + 2 * TC_K_UNIT, np);
    let a_ptr = gpu.mem.upload_i8(&tile_a_for_tc(&a_pad)).addr;
    let b_ptr = gpu.mem.upload_i8(b_pad.as_slice()).addr;
    let c_dev = gpu.mem.alloc((mp * np * 4) as u32);
    let blocks_x = (np / TC_N_TILE) as u32;
    let blocks = blocks_x * row_blocks.min((mp / 32) as u32);
    Kernel::single(
        "gemm_tc",
        tc_gemm_program(2, 0).into_arc(),
        blocks,
        8,
        tc_smem_bytes(2),
        tc_args(
            a_ptr,
            b_ptr,
            c_dev.addr,
            blocks_x,
            kp as u32,
            np as u32,
            (mp * 16) as u32,
        ),
    )
}

fn gemm_tc_family(
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    row_blocks: u32,
    samples: usize,
) -> Family {
    measure(name, format!("tc gemm {m}x{k}x{n}, direct launch"), |ff| {
        let mut gpu = orin_gpu(ff, 32 << 20);
        let kernel = tc_launch(&mut gpu, m, k, n, row_blocks);
        let mut stats = KernelStats::default();
        let wall = bench(&format!("sim_fastforward/{name}/ff_{ff}"), samples, || {
            gpu.cold_caches();
            stats = gpu.launch(&kernel).expect("launch");
            black_box(stats.cycles)
        });
        (wall, stats, 0)
    })
}

fn fused_vitbit_family() -> Family {
    let (m, k, n) = (64usize, 512, 512);
    let a = gen::uniform_i8(m, k, -32, 31, 7);
    let b = gen::uniform_i8(k, n, -32, 31, 8);
    let cfg = ExecConfig::guarded(6);
    measure(
        "gemm_fused_vitbit",
        format!("fused vitbit gemm {m}x{k}x{n}, full driver"),
        |ff| {
            let mut gpu = orin_gpu(ff, 32 << 20);
            // Plan once, then time the hot-path executes: the launch
            // sequence (and so the simulated cycles) matches the old
            // one-shot driver, minus per-sample host re-packing.
            let mut engine = Engine::new();
            let mut desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &gpu, m, k, n, Some(1));
            desc.adaptive = false;
            let id = engine.prepare(desc).expect("prepare");
            let mut stats = KernelStats::default();
            let wall = bench(
                &format!("sim_fastforward/gemm_fused_vitbit/ff_{ff}"),
                3,
                || {
                    gpu.cold_caches();
                    stats = engine.execute(&mut gpu, id, &a, &b).expect("execute").stats;
                    black_box(stats.cycles)
                },
            );
            (wall, stats, engine.stats().plan_build_units)
        },
    )
}

fn elementwise_family() -> Family {
    // Issue-bound: plenty of ready warps per SM, so fast-forward rarely
    // engages — this family is the "no regression" guard.
    let spec = PackSpec::guarded(6, 6).unwrap();
    let x = gen::uniform_i8(197, 768, -32, 31, 9);
    measure(
        "elementwise_gelu",
        "gelu over 197x768 int6 codes (vitbit packed variant), full driver".into(),
        |ff| {
            let mut gpu = orin_gpu(ff, 16 << 20);
            let mut stats = KernelStats::default();
            let wall = bench(
                &format!("sim_fastforward/elementwise_gelu/ff_{ff}"),
                5,
                || {
                    gpu.cold_caches();
                    stats = run_map(
                        &mut gpu,
                        MapOp::Gelu,
                        EwVariant::VitBit(spec),
                        6,
                        x.as_slice(),
                        None,
                    )
                    .stats;
                    black_box(stats.cycles)
                },
            );
            (wall, stats, 0)
        },
    )
}

fn vit_block_family() -> Family {
    let model = ViTModel::new(ViTConfig::tiny(), 7);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(3);
    measure(
        "vit_block",
        "one tiny ViT encoder block under the VitBit strategy".into(),
        |ff| {
            let mut gpu = orin_gpu(ff, 64 << 20);
            let mut engine = Engine::new();
            let plan = VitPlan::build(&mut engine, &gpu, &model, Strategy::VitBit, &cfg, Some(1));
            let mut acc = KernelStats::default();
            let wall = bench(&format!("sim_fastforward/vit_block/ff_{ff}"), 3, || {
                let r = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x);
                acc = KernelStats::default();
                for t in &r.timings {
                    acc.accumulate(&t.stats);
                }
                black_box(r.logits)
            });
            (wall, acc, engine.stats().plan_build_units)
        },
    )
}

/// One ABFT-overhead measurement: a fused INT8 GEMM on a ViT Linear
/// shape, executed with checksummed verification on, reporting the
/// modeled check cost as a share of the kernel's simulated cycles.
struct AbftRow {
    site: &'static str,
    m: usize,
    k: usize,
    n: usize,
    cycles: u64,
    check_cycles: u64,
}

impl AbftRow {
    fn overhead_pct(&self) -> f64 {
        100.0 * self.check_cycles as f64 / (self.cycles as f64).max(1.0)
    }
}

/// Measures the steady-state ABFT verification overhead on the fused
/// VitBit INT8 path over the ViT-Base Linear shapes. The cold execute
/// stages the weights (and the cached `bsum` checksum vector); the hot
/// execute is the per-request cost a deployed forward pass pays.
fn abft_overhead_rows() -> Vec<AbftRow> {
    let cfg = ExecConfig::guarded(8);
    let shapes: [(&'static str, usize, usize, usize); 3] = [
        ("qkv_proj", 197, 768, 768),
        ("fc1", 197, 768, 3072),
        ("fc2", 197, 3072, 768),
    ];
    let mut rows = Vec::new();
    for (site, m, k, n) in shapes {
        let a = gen::uniform_i8(m, k, -128, 127, 21);
        let b = gen::uniform_i8(k, n, -128, 127, 22);
        let mut gpu = orin_gpu(true, 96 << 20);
        let mut engine = Engine::new();
        let mut desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &gpu, m, k, n, Some(1));
        desc.adaptive = false;
        desc.abft = true;
        let id = engine.prepare(desc).expect("prepare");
        let _cold = engine.execute(&mut gpu, id, &a, &b).expect("execute");
        gpu.cold_caches();
        let hot = engine.execute(&mut gpu, id, &a, &b).expect("execute");
        let row = AbftRow {
            site,
            m,
            k,
            n,
            cycles: hot.stats.cycles,
            check_cycles: hot.stats.abft_check_cycles,
        };
        println!(
            "  abft {site} ({m}x{k}x{n}): {} gemm cycles + {} check cycles ({:.2}% overhead)",
            row.cycles,
            row.check_cycles,
            row.overhead_pct()
        );
        assert_eq!(engine.stats().faults_detected, 0, "fault-free run");
        assert!(
            row.overhead_pct() <= 10.0,
            "{site}: ABFT overhead {:.2}% exceeds the 10% budget",
            row.overhead_pct()
        );
        rows.push(row);
    }
    rows
}

fn write_json(families: &[Family], abft: &[AbftRow]) {
    let mut rows = Vec::new();
    for f in families {
        rows.push(format!(
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"simulated_cycles\": {}, \
             \"wall_ns_off\": {}, \"wall_ns_on\": {}, \"skipped_cycles\": {}, \
             \"fast_forward_jumps\": {}, \"skip_ratio\": {:.4}, \"speedup\": {:.3}, \
             \"plan_build_units\": {}, \"execute_cycles\": {}}}",
            f.name,
            f.workload,
            f.on.cycles,
            f.off_wall.as_nanos(),
            f.on_wall.as_nanos(),
            f.on.skipped_cycles,
            f.on.fast_forward_jumps,
            f.on.skip_ratio(),
            f.speedup(),
            f.build_units,
            f.on.cycles,
        ));
    }
    let mut abft_rows = Vec::new();
    for r in abft {
        abft_rows.push(format!(
            "    {{\"site\": \"{}\", \"shape\": \"{}x{}x{}\", \"strategy\": \"vitbit_fused_int8\", \
             \"gemm_cycles\": {}, \"abft_check_cycles\": {}, \"overhead_pct\": {:.3}}}",
            r.site, r.m, r.k, r.n, r.cycles, r.check_cycles, r.overhead_pct(),
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"sim_fastforward\",\n  \"host_cores\": {cores},\n  \"families\": [\n{}\n  ],\n  \"abft_overhead\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        abft_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}

fn main() {
    println!("-- event-horizon fast-forward, per kernel family --");
    let families = vec![
        // The acceptance workload: one resident block whose warps spend
        // ~70% of cycles blocked on DRAM — must clear 2x.
        gemm_tc_family("gemm_tc_membound", 32, 3072, 64, 1, 5),
        // Full-occupancy ViT Linear shape: skip ratio ~0, speedup ~1x.
        gemm_tc_family("gemm_tc_linear", 197, 768, 768, u32::MAX, 3),
        fused_vitbit_family(),
        elementwise_family(),
        vit_block_family(),
    ];
    println!("-- ABFT checksum overhead, fused INT8 ViT GEMM shapes --");
    let abft = abft_overhead_rows();
    write_json(&families, &abft);

    let membound = &families[0];
    println!(
        "membound TC GEMM speedup: {:.2}x (target >= 2x)",
        membound.speedup()
    );
    let ew = &families[3];
    println!(
        "elementwise regression: {:.1}% (target <= 5%)",
        100.0 * (1.0 / ew.speedup() - 1.0)
    );
}
