//! Wall-clock effect of the serving path: batched execution with
//! steady-state replay vs a sequential `execute` loop, per strategy.
//!
//! Each family serves the same `N` requests twice — once through
//! [`Engine::execute`] one request at a time (replay never engages on the
//! sequential path), once through [`Engine::execute_batch`] on an identical
//! machine — and asserts the outputs are bit-identical along the way. The
//! batch leg's win is the steady-state replay: once the L2 tag state maps
//! onto itself, every further request is answered with the converged launch
//! statistics and a host-exact GEMM instead of a full simulation.
//!
//! A persistence check then round-trips a warm engine's plan cache through
//! [`Engine::export_plans`] / [`Engine::import_plans`] and proves the cold
//! replica boots with zero policy resolution and zero re-verification.
//!
//! Results splice a `"serving"` section into `BENCH_sim.json` at the repo
//! root (idempotently — an existing section is replaced); EXPERIMENTS.md
//! records a reference run. `--smoke` runs the TC linear family plus the
//! cold-boot check and asserts the acceptance floor (batched >= 1.3x
//! sequential) — relative in-process timing, robust to slow CI runners.

use std::hint::black_box;
use std::time::{Duration, Instant};
use vitbit_bench::timing::bench;
use vitbit_exec::{ExecConfig, Strategy};
use vitbit_plan::{Engine, GemmDesc, GpuPool, HealthPolicy};
use vitbit_sim::{FaultConfig, Gpu, OrinConfig};
use vitbit_tensor::gen;
use vitbit_tensor::Matrix;

fn orin_gpu(mem_bytes: u32) -> Gpu {
    Gpu::new(OrinConfig::jetson_agx_orin(), mem_bytes)
}

/// One strategy's paired measurement (sequential loop vs one batch).
struct ServingFamily {
    name: &'static str,
    workload: String,
    requests: usize,
    seq_wall: Duration,
    batch_wall: Duration,
    replayed: usize,
}

impl ServingFamily {
    fn speedup(&self) -> f64 {
        self.seq_wall.as_secs_f64() / self.batch_wall.as_secs_f64().max(1e-12)
    }
}

/// Serves `nreq` distinct-operand requests of one desc sequentially and
/// batched, on identical machines, asserting bit-identical outputs.
fn serving_family(
    name: &'static str,
    strategy: Strategy,
    m: usize,
    k: usize,
    n: usize,
    nreq: usize,
    samples: usize,
) -> ServingFamily {
    let cfg = ExecConfig::guarded(6);
    let a_mats: Vec<Matrix<i8>> = (0..nreq)
        .map(|i| gen::uniform_i8(m, k, -32, 31, 40 + i as u64))
        .collect();
    let b = gen::uniform_i8(k, n, -32, 31, 9);
    let desc_for = |gpu: &Gpu| {
        let mut d = GemmDesc::from_exec(strategy, &cfg, gpu, m, k, n, Some(1));
        d.adaptive = false;
        d
    };

    // Sequential leg: one live launch per request, every sample.
    let mut gpu = orin_gpu(256 << 20);
    let mut engine = Engine::new();
    let id = engine.prepare(desc_for(&gpu)).expect("prepare");
    let mut seq_outs = Vec::new();
    let seq_wall = bench(&format!("serving/{name}/sequential"), samples, || {
        seq_outs = a_mats
            .iter()
            .map(|a| engine.execute(&mut gpu, id, a, &b).expect("execute").c)
            .collect();
        black_box(seq_outs.len())
    });

    // Batch leg on an identical machine: the warmup run inside `bench`
    // converges the L2 fixed point, so measured samples ride the replay.
    let mut gpu = orin_gpu(256 << 20);
    let mut engine = Engine::new();
    let id = engine.prepare(desc_for(&gpu)).expect("prepare");
    let reqs: Vec<(&Matrix<i8>, &Matrix<i8>)> = a_mats.iter().map(|a| (a, &b)).collect();
    let mut replayed = 0;
    let mut batch_outs = Vec::new();
    let batch_wall = bench(&format!("serving/{name}/batched"), samples, || {
        let batch = engine.execute_batch(&mut gpu, id, &reqs).expect("batch");
        replayed = batch.replayed();
        batch_outs = batch.outcomes.into_iter().map(|o| o.out.c).collect();
        black_box(batch_outs.len())
    });
    assert_eq!(
        seq_outs, batch_outs,
        "{name}: batched outputs diverge from sequential"
    );

    let f = ServingFamily {
        name,
        workload: format!("{} gemm {m}x{k}x{n}, {nreq} requests", strategy.name()),
        requests: nreq,
        seq_wall,
        batch_wall,
        replayed,
    };
    println!(
        "  {name}: sequential {seq_wall:?} batched {batch_wall:?} speedup {:.2}x \
         ({replayed}/{nreq} replayed)",
        f.speedup()
    );
    f
}

/// One pool-size's paired drain measurement (serial vs scoped-thread
/// parallel, identical submissions, bit-identical completions asserted).
struct PoolDrainFamily {
    devices: usize,
    requests: usize,
    serial_wall: Duration,
    parallel_wall: Duration,
}

impl PoolDrainFamily {
    fn speedup(&self) -> f64 {
        self.serial_wall.as_secs_f64() / self.parallel_wall.as_secs_f64().max(1e-12)
    }
}

/// Descs that spread evenly over a pool of `devices` shards: probe the
/// affinity hash with increasing `n` until every shard owns `per_shard`
/// descs (routing is deterministic, so the probe is exact).
fn balanced_descs(devices: usize, per_shard: usize) -> Vec<GemmDesc> {
    let machine = OrinConfig::test_small();
    let probe_pool = GpuPool::new(devices, &machine, 64 << 20);
    let probe_gpu = Gpu::new(machine, 64 << 20);
    let cfg = ExecConfig::guarded(6);
    let mut owned = vec![0usize; devices];
    let mut descs = Vec::new();
    let mut weight = 0u64;
    let mut n = 128usize;
    while descs.len() < devices * per_shard {
        let mut d = GemmDesc::from_exec(Strategy::Tc, &cfg, &probe_gpu, 64, 128, n, Some(weight));
        d.adaptive = false;
        let home = probe_pool.route(&d);
        if owned[home] < per_shard {
            owned[home] += 1;
            descs.push(d);
            weight += 1;
        }
        n += 32;
    }
    descs
}

/// Serial vs parallel pool drain over `devices` shards, balanced load.
/// Every sample drains freshly submitted work on freshly built pools
/// (construction and submission sit outside the timed region), and the
/// two pools' completions and per-shard counters must be bit-identical.
fn pool_drain_family(devices: usize, samples: usize) -> PoolDrainFamily {
    let machine = OrinConfig::test_small();
    let descs = balanced_descs(devices, 2);
    let per_desc = 3usize;
    let requests = descs.len() * per_desc;
    let submit_all = |pool: &mut GpuPool| {
        for (di, d) in descs.iter().enumerate() {
            for r in 0..per_desc {
                let a = gen::uniform_i8(d.m, d.k, -32, 31, 500 + (di * per_desc + r) as u64);
                let b = gen::uniform_i8(d.k, d.n, -32, 31, 900 + di as u64);
                pool.submit(*d, a, b).expect("pool submit");
            }
        }
    };
    let (mut serial_wall, mut parallel_wall) = (Duration::MAX, Duration::MAX);
    for _ in 0..samples {
        let mut ser = GpuPool::new(devices, &machine, 64 << 20);
        let mut par = GpuPool::new(devices, &machine, 64 << 20);
        submit_all(&mut ser);
        submit_all(&mut par);
        let t0 = Instant::now();
        let done_ser = ser.drain_serial();
        let ser_wall = t0.elapsed();
        let t0 = Instant::now();
        let done_par = par.drain();
        let par_wall = t0.elapsed();
        assert_eq!(done_ser.len(), requests);
        assert_eq!(done_par.len(), requests);
        for (x, y) in done_ser.iter().zip(&done_par) {
            assert_eq!(x.ticket, y.ticket, "x{devices}: drain order");
            let (ox, oy) = (
                x.result.as_ref().expect("serial"),
                y.result.as_ref().expect("parallel"),
            );
            assert_eq!(ox.out.c, oy.out.c, "x{devices}: payload");
            assert_eq!(ox.out.stats, oy.out.stats, "x{devices}: stats");
        }
        assert_eq!(
            ser.device_stats(),
            par.device_stats(),
            "x{devices}: per-shard counters must be scheduling-invariant"
        );
        serial_wall = serial_wall.min(ser_wall);
        parallel_wall = parallel_wall.min(par_wall);
    }
    let f = PoolDrainFamily {
        devices,
        requests,
        serial_wall,
        parallel_wall,
    };
    println!(
        "  pool_drain x{devices}: serial {serial_wall:?} parallel {parallel_wall:?} \
         speedup {:.2}x ({requests} requests)",
        f.speedup()
    );
    f
}

/// Chaos-soak availability: a pool with one hung or corrupting device
/// must complete every accepted ticket. Records how the answers split
/// between surviving devices and the host reference path.
struct ChaosAvailability {
    scenario: &'static str,
    seeds: u64,
    requests: u64,
    completed: u64,
    host_answers: u64,
    evictions: u64,
}

fn chaos_availability() -> Vec<ChaosAvailability> {
    let devices = 3usize;
    let cfg_base = || {
        let mut c = OrinConfig::test_small();
        c.max_cycles = 200_000;
        c.fast_forward = true;
        c
    };
    let cfg = ExecConfig::guarded(6);
    let mut out = Vec::new();
    for (scenario, hang, flip) in [
        ("hung_device", 0.25f64, 0.0f64),
        ("corrupting_device", 0.0, 5e-3),
    ] {
        let (mut requests, mut completed, mut host_answers, mut evictions) =
            (0u64, 0u64, 0u64, 0u64);
        let seeds = 4u64;
        for seed in 0..seeds {
            let probe_gpu = Gpu::new(cfg_base(), 64 << 20);
            let mut abft = cfg;
            abft.abft = true;
            let mut d = GemmDesc::from_exec(Strategy::Tc, &abft, &probe_gpu, 16, 32, 128, Some(1));
            d.adaptive = false;
            let probe_pool = GpuPool::new(devices, &cfg_base(), 64 << 20);
            let faulty = probe_pool.route(&d);
            let cfgs: Vec<OrinConfig> = (0..devices)
                .map(|i| {
                    let mut c = cfg_base();
                    if i == faulty {
                        c.fault = FaultConfig {
                            enabled: true,
                            seed,
                            reg_flip_rate: flip,
                            dram_flip_rate: 0.0,
                            hang_rate: hang,
                        };
                    }
                    c
                })
                .collect();
            let mut pool =
                GpuPool::with_devices(&cfgs, 64 << 20).with_health_policy(HealthPolicy {
                    degrade_after_faults: 1,
                    evict_after_quarantines: 1,
                    ..HealthPolicy::default()
                });
            for r in 0..4u64 {
                let a = gen::uniform_i8(d.m, d.k, -32, 31, 70 + seed * 10 + r);
                let b = gen::uniform_i8(d.k, d.n, -32, 31, 80 + seed * 10 + r);
                pool.submit(d, a, b).expect("chaos submit");
                requests += 1;
            }
            let done = pool.drain();
            completed += done.iter().filter(|c| c.result.is_ok()).count() as u64;
            let ps = pool.pool_stats();
            host_answers += ps.host_answers;
            evictions += ps.evictions;
        }
        assert_eq!(requests, completed, "{scenario}: chaos must not drop work");
        out.push(ChaosAvailability {
            scenario,
            seeds,
            requests,
            completed,
            host_answers,
            evictions,
        });
    }
    for c in &out {
        println!(
            "  chaos/{}: {}/{} completed over {} seeds ({} host answers, {} evictions)",
            c.scenario, c.completed, c.requests, c.seeds, c.host_answers, c.evictions
        );
    }
    out
}

/// Cold-boot persistence: a replica importing the warm engine's exported
/// plans prepares every desc with zero build work and zero verifier
/// invocations, and executes bit-identically.
struct PersistCheck {
    plans: u64,
    bytes: usize,
    cold_build_units: u64,
    cold_verifier_invocations: u64,
    cold_build_cycles: u64,
}

fn persistence_check() -> PersistCheck {
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    let gpu_w = Gpu::new(OrinConfig::test_small(), 64 << 20);
    let mut descs: Vec<GemmDesc> = [Strategy::Tc, Strategy::Tacker, Strategy::VitBit]
        .iter()
        .map(|&s| GemmDesc::from_exec(s, &cfg, &gpu_w, 16, 32, 320, None))
        .collect();
    // One desc carries a real verification proof across the boot (the ViT
    // Linear shape the static verifier covers).
    let mut vcfg = cfg;
    vcfg.verify_plans = true;
    descs.push(GemmDesc::from_exec(
        Strategy::VitBit,
        &vcfg,
        &gpu_w,
        197,
        768,
        768,
        None,
    ));
    let a = gen::uniform_i8(16, 32, -32, 31, 1);
    let b = gen::uniform_i8(32, 320, -32, 31, 2);

    let mut warm = Engine::new().with_verifier(vitbit_verify::engine_verifier());
    let mut gpu_warm = Gpu::new(OrinConfig::test_small(), 64 << 20);
    let warm_ids: Vec<_> = descs
        .iter()
        .map(|&d| warm.prepare(d).expect("warm prepare"))
        .collect();
    let want = warm
        .execute(&mut gpu_warm, warm_ids[0], &a, &b)
        .expect("warm execute");
    let blob = warm.export_plans();

    let mut cold = Engine::new().with_verifier(vitbit_verify::engine_verifier());
    let mut gpu_cold = Gpu::new(OrinConfig::test_small(), 64 << 20);
    let summary = cold.import_plans(&blob).expect("import");
    assert_eq!(
        summary.imported,
        descs.len() as u64,
        "every plan must import"
    );
    assert_eq!(summary.rejected, 0);
    let cold_ids: Vec<_> = descs
        .iter()
        .map(|&d| cold.prepare(d).expect("cold prepare"))
        .collect();
    let got = cold
        .execute(&mut gpu_cold, cold_ids[0], &a, &b)
        .expect("cold execute");
    assert_eq!(got.c, want.c, "cold replica must serve bit-identically");
    let st = cold.stats();
    assert_eq!(st.verifier_invocations, 0, "cold boot must not re-verify");
    assert_eq!(st.plan_build_units, 0, "cold boot must not re-resolve");
    assert_eq!(st.plan_cache_misses, 0, "cold prepares must all hit");
    assert_eq!(got.stats.plan_build_cycles, 0);
    let check = PersistCheck {
        plans: summary.imported,
        bytes: blob.len(),
        cold_build_units: st.plan_build_units,
        cold_verifier_invocations: st.verifier_invocations,
        cold_build_cycles: got.stats.plan_build_cycles,
    };
    println!(
        "  persistence: {} plans, {} bytes; cold boot build_units {} \
         verifier_invocations {} build_cycles {}",
        check.plans,
        check.bytes,
        check.cold_build_units,
        check.cold_verifier_invocations,
        check.cold_build_cycles
    );
    check
}

/// Splices a `"serving"` section into `BENCH_sim.json`, replacing any
/// existing one (the file is owned by `sim_fastforward`; every splicing
/// bench appends its own sections before the closing brace and each
/// removes all spliced sections on rewrite — see `sim_interp.rs`).
fn write_json(
    families: &[ServingFamily],
    persist: &PersistCheck,
    pool_drain: &[PoolDrainFamily],
    chaos: &[ChaosAvailability],
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let base = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let markers = [",\n  \"serving\":"];
    let base = match markers.iter().filter_map(|m| base.find(m)).min() {
        Some(at) => format!("{}\n}}\n", &base[..at]),
        None => base,
    };
    let rows: Vec<String> = families
        .iter()
        .map(|f| {
            format!(
                "      {{\"family\": \"{}\", \"workload\": \"{}\", \"requests\": {}, \
                 \"replayed\": {}, \"wall_ns_sequential\": {}, \"wall_ns_batched\": {}, \
                 \"speedup\": {:.3}}}",
                f.name,
                f.workload,
                f.requests,
                f.replayed,
                f.seq_wall.as_nanos(),
                f.batch_wall.as_nanos(),
                f.speedup(),
            )
        })
        .collect();
    let drain_rows: Vec<String> = pool_drain
        .iter()
        .map(|f| {
            format!(
                "      {{\"devices\": {}, \"requests\": {}, \"wall_ns_serial\": {}, \
                 \"wall_ns_parallel\": {}, \"speedup\": {:.3}}}",
                f.devices,
                f.requests,
                f.serial_wall.as_nanos(),
                f.parallel_wall.as_nanos(),
                f.speedup(),
            )
        })
        .collect();
    let chaos_rows: Vec<String> = chaos
        .iter()
        .map(|c| {
            format!(
                "      {{\"scenario\": \"{}\", \"seeds\": {}, \"requests\": {}, \
                 \"completed\": {}, \"host_answers\": {}, \"evictions\": {}}}",
                c.scenario, c.seeds, c.requests, c.completed, c.host_answers, c.evictions,
            )
        })
        .collect();
    let trimmed = base.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("BENCH_sim.json ends with an object")
        .trim_end();
    let json = format!(
        "{body},\n  \"serving\": {{\n    \"families\": [\n{}\n    ],\n    \
         \"pool_drain\": [\n{}\n    ],\n    \"chaos\": [\n{}\n    ],\n    \
         \"persistence\": {{\"plans\": {}, \"bytes\": {}, \"cold_build_units\": {}, \
         \"cold_verifier_invocations\": {}, \"cold_build_cycles\": {}}}\n  }}\n}}\n",
        rows.join(",\n"),
        drain_rows.join(",\n"),
        chaos_rows.join(",\n"),
        persist.plans,
        persist.bytes,
        persist.cold_build_units,
        persist.cold_verifier_invocations,
        persist.cold_build_cycles,
    );
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}

/// Host cores visible to the scheduler; the parallel-drain floor only
/// binds when the host can actually run the shards side by side.
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let smoke_pool = std::env::args().any(|a| a == "--smoke-pool");
    if smoke {
        // CI perf guard: relative (sequential vs batched in the same
        // process), so it cannot flake on absolute runner speed. The
        // acceptance floor for the issue is 1.3x on this family; measured
        // headroom comes from replaying most of the 16 requests.
        println!("-- serving smoke (gemm_tc_linear batched vs sequential) --");
        let f = serving_family("gemm_tc_linear", Strategy::Tc, 197, 768, 768, 16, 2);
        println!(
            "gemm_tc_linear batched speedup: {:.2}x (smoke floor 1.3x)",
            f.speedup()
        );
        assert!(
            f.speedup() >= 1.3,
            "batched serving regressed: {:.2}x < 1.3x on gemm_tc_linear",
            f.speedup()
        );
        println!("-- persisted plan-cache cold boot --");
        persistence_check();
        return;
    }
    if smoke_pool {
        // CI perf guard for the fault-domain layer: a 4-device pool's
        // scoped-thread drain vs the serial oracle, same submissions,
        // bit-identical completions asserted inside the family. The
        // 1.5x floor only binds on hosts with >= 4 cores — on fewer the
        // shard threads time-slice one core and the ratio is
        // meaningless, so the run still validates equivalence and
        // reports the number without asserting it.
        println!("-- pool drain smoke (4 devices, parallel vs serial) --");
        let f = pool_drain_family(4, 2);
        let cores = host_cores();
        println!(
            "pool_drain x4 speedup: {:.2}x on {cores} host core(s) (floor 1.5x at >= 4 cores)",
            f.speedup()
        );
        if cores >= 4 {
            assert!(
                f.speedup() >= 1.5,
                "parallel drain regressed: {:.2}x < 1.5x on a {cores}-core host",
                f.speedup()
            );
        }
        println!("-- chaos availability (hung + corrupting device) --");
        chaos_availability();
        return;
    }
    println!("-- batched serving vs sequential execute loop, per strategy --");
    let families = vec![
        serving_family("gemm_tc_linear", Strategy::Tc, 197, 768, 768, 16, 3),
        serving_family("gemm_vitbit_linear", Strategy::VitBit, 197, 768, 768, 16, 3),
    ];
    println!("-- pool drain: scoped-thread parallel vs serial oracle --");
    let pool_drain: Vec<PoolDrainFamily> = [1usize, 2, 4]
        .iter()
        .map(|&d| pool_drain_family(d, 2))
        .collect();
    println!("-- chaos availability (hung + corrupting device) --");
    let chaos = chaos_availability();
    println!("-- persisted plan-cache cold boot --");
    let persist = persistence_check();
    write_json(&families, &persist, &pool_drain, &chaos);
    let linear = &families[0];
    println!(
        "gemm_tc_linear batched speedup: {:.2}x (acceptance floor 1.3x)",
        linear.speedup()
    );
}
