//! Wall-clock throughput of the two-phase parallel simulator and the
//! packed-weight cache.
//!
//! Measures (a) simulated cycles per wall second for `SimMode::Serial` vs
//! `SimMode::Parallel` — both the inline single-worker loop (the default on
//! a one-core host) and the pooled loop — on math-dense / memory-streaming
//! kernels and on one simulated ViT encoder block, and (b) the host-side
//! preprocessing cost (`pack_matrix_rows` + weight colsum) that the
//! `PackedWeightCache` eliminates on every forward pass after the first,
//! timed at ViT-Base weight shapes. Both sim modes are bit-identical
//! (tests/parallel_determinism.rs); this bench only reports speed. The
//! report prints the detected core count: on a single-core host the pooled
//! numbers show timesharing overhead, not scaling, and EXPERIMENTS.md
//! records them with that caveat.

use std::hint::black_box;
use std::time::Duration;
use vitbit_bench::timing::bench;
use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::CoreRatio;
use vitbit_exec::{Engine, ExecConfig, PackedWeightCache, Strategy};
use vitbit_kernels::gemm::{PackedWeight, WeightKey};
use vitbit_sim::isa::{ICmp, MemWidth, SReg, Src};
use vitbit_sim::program::ProgramBuilder;
use vitbit_sim::{Gpu, Kernel, OrinConfig, SimMode};
use vitbit_tensor::gen;
use vitbit_vit::{run_vit_planned, ViTConfig, ViTModel, VitPlan};

fn gpu_with(mode: SimMode, threads: u32) -> Gpu {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = mode;
    cfg.sim_threads = Some(threads);
    Gpu::new(cfg, 128 << 20)
}

/// Math-dense kernel: 256 iterations of 8 independent IMAD chains, enough
/// blocks to keep every modelled SM busy (the parallel win lives in the
/// per-SM compute phase).
fn math_kernel(blocks: u32, warps: u32) -> Kernel {
    let mut p = ProgramBuilder::new("parbench_math");
    let acc = p.alloc_n(8);
    let i = p.alloc();
    let pr = p.alloc_pred();
    p.mov(i, Src::Imm(0));
    p.label_here("loop");
    for r in 0..8u16 {
        let reg = vitbit_sim::isa::Reg(acc.0 + r as u8);
        p.imad(reg, reg.into(), Src::Imm(3), Src::Imm(1));
    }
    p.iadd(i, i.into(), Src::Imm(1));
    p.isetp(pr, i.into(), Src::Imm(256), ICmp::Lt);
    p.bra_if("loop", pr, true);
    p.exit();
    Kernel::single(
        "parbench_math",
        p.build().into_arc(),
        blocks,
        warps,
        0,
        vec![],
    )
}

/// Memory-streaming kernel: strided 32-bit loads, stressing the serial
/// memory-service phase (the Amdahl floor of the parallel mode).
fn stream_kernel(gpu: &mut Gpu, blocks: u32) -> Kernel {
    let buf = gpu.mem.alloc(blocks * 32 * 4 * 64 + 128 * 64);
    let mut p = ProgramBuilder::new("parbench_stream");
    let base = p.alloc();
    let tid = p.alloc();
    let ctaid = p.alloc();
    let addr = p.alloc();
    let v = p.alloc();
    let i = p.alloc();
    let pr = p.alloc_pred();
    p.ldc(base, 0);
    p.sreg(tid, SReg::Tid);
    p.sreg(ctaid, SReg::Ctaid);
    p.imad(addr, ctaid.into(), Src::Imm(32 * 4), base.into());
    p.imad(addr, tid.into(), Src::Imm(4), addr.into());
    p.mov(i, Src::Imm(0));
    p.label_here("loop");
    p.ldg(v, addr, 0, MemWidth::B32);
    p.iadd(addr, addr.into(), Src::Imm(128));
    p.iadd(i, i.into(), Src::Imm(1));
    p.isetp(pr, i.into(), Src::Imm(64), ICmp::Lt);
    p.bra_if("loop", pr, true);
    p.exit();
    Kernel::single(
        "parbench_stream",
        p.build().into_arc(),
        blocks,
        1,
        0,
        vec![buf.addr],
    )
}

fn report_rate(name: &str, cycles: u64, wall: Duration) {
    println!(
        "{name:<48} {:>10.2} Msim-cycles/s  ({cycles} cycles / {wall:.3?})",
        cycles as f64 / wall.as_secs_f64() / 1e6
    );
}

/// The ViT model used for end-to-end runs: wide enough (dim 128,
/// CUDA-heavy ratio) that the fused VitBit driver actually packs weights
/// instead of falling back to pure Tensor-core GEMMs.
fn bench_model() -> (ViTModel, ExecConfig) {
    let mut vc = ViTConfig::tiny();
    vc.blocks = 1;
    vc.dim = 128;
    vc.head_dim = 64;
    vc.mlp_dim = 256;
    let model = ViTModel::new(vc, 7);
    let mut cfg = ExecConfig::guarded(model.cfg.bitwidth);
    cfg.ratio = Some(CoreRatio { tc: 1, cuda: 3 });
    cfg.adaptive = false;
    (model, cfg)
}

fn bench_modes() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
    println!("-- serial vs parallel ({cores} host cores detected) --");
    // parallel/1 runs the two-phase loop inline on the calling thread (the
    // default resolution on a one-core host); parallel/pooled exercises the
    // scoped-thread pool with at least two workers.
    for (label, mode, t) in [
        ("serial", SimMode::Serial, 1),
        ("parallel-inline", SimMode::Parallel, 1),
        ("parallel-pooled", SimMode::Parallel, cores.max(2)),
    ] {
        let mut gpu = gpu_with(mode, t);
        let k = math_kernel(28, 8);
        let mut cycles = 0;
        let wall = bench(&format!("sim_parallel/math_28_blocks/{label}"), 5, || {
            cycles = gpu.launch(&k).expect("launch").cycles;
            black_box(cycles)
        });
        report_rate(&format!("  rate/math/{label}"), cycles, wall);

        let mut gpu = gpu_with(mode, t);
        let k = stream_kernel(&mut gpu, 28);
        let wall = bench(&format!("sim_parallel/stream_28_blocks/{label}"), 5, || {
            cycles = gpu.launch(&k).expect("launch").cycles;
            black_box(cycles)
        });
        report_rate(&format!("  rate/stream/{label}"), cycles, wall);

        let (model, cfg) = bench_model();
        let x = model.synthetic_input(3);
        let mut gpu = gpu_with(mode, t);
        let mut engine = Engine::new();
        let plan = VitPlan::build(&mut engine, &gpu, &model, Strategy::VitBit, &cfg, Some(1));
        let mut cycles = 0;
        let wall = bench(&format!("sim_parallel/vit_block/{label}"), 3, || {
            let r = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x);
            cycles = r.timings.iter().map(|t| t.stats.cycles).sum();
            black_box(r.logits)
        });
        report_rate(&format!("  rate/vit_block/{label}"), cycles, wall);
    }
}

fn bench_weight_cache() {
    println!("-- packed-weight cache --");
    let spec = PackSpec::guarded(6, 6).unwrap();

    // What one Algorithm-1 preprocessing pass (pack + weight colsum) costs
    // at ViT-Base weight shapes. A ViT-Base forward packs 48 dim x dim
    // operands (wq/wk/wv/wo x 12 blocks) and 24 MLP operands; the cache
    // pays this once instead of once per forward pass.
    let mut per_pass = Duration::ZERO;
    for (name, k, n, count) in [
        ("qkv_wo_768x768", 768, 768, 48u32),
        ("mlp_768x3072", 768, 3072, 24),
    ] {
        let b = gen::uniform_i8(k, n, -32, 31, 9);
        let d = bench(&format!("sim_parallel/pack_vitbase/{name}"), 10, || {
            black_box(PackedWeight::build(&b, &spec))
        });
        per_pass += d * count;
    }
    println!("  preprocessing eliminated per cached ViT-Base pass: {per_pass:.3?}");

    // Cost of a cache hit: key hash + two Arc clones.
    let b = gen::uniform_i8(768, 768, -32, 31, 9);
    let mut cache = PackedWeightCache::new();
    let key = WeightKey {
        weight: 1,
        spec,
        col_lo: 0,
        col_len: 768,
        up_rows: 768,
        cols_padded: 768,
    };
    cache.get_or_pack(key, || PackedWeight::build(&b, &spec));
    bench("sim_parallel/pack_vitbase/cache_hit", 10, || {
        black_box(cache.get_or_pack(key, || unreachable!("entry is warm")))
    });

    // End-to-end simulated passes: the cycle-level simulator dominates wall
    // time at this scale, so cached and uncached passes should be equal
    // within noise — the cache must never cost anything.
    let (model, cfg) = bench_model();
    let x = model.synthetic_input(3);
    let mut gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
    // Warm path: one engine planned and primed up front, so every timed
    // pass is the plan-cache hot path (zero re-packing, zero re-planning).
    let mut engine = Engine::new();
    let plan = VitPlan::build(&mut engine, &gpu, &model, Strategy::VitBit, &cfg, Some(1));
    let _ = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x);
    bench("sim_parallel/vit_pass/cached_warm", 5, || {
        black_box(run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x).logits)
    });
    let mut gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
    // Cold path: a fresh engine per pass re-plans and re-packs everything,
    // like the historical one-shot driver did.
    bench("sim_parallel/vit_pass/uncached", 5, || {
        let mut cold = Engine::new();
        let plan = VitPlan::build(&mut cold, &gpu, &model, Strategy::VitBit, &cfg, Some(1));
        black_box(run_vit_planned(&mut gpu, &mut cold, &plan, &model, &x).logits)
    });
    println!(
        "  cache after timed passes: {} packs, {} hits",
        engine.weights().misses(),
        engine.weights().hits()
    );
}

fn main() {
    bench_modes();
    bench_weight_cache();
}
