//! Wall-clock effect of the trace-compiled (micro-op) warp interpreter,
//! per kernel family.
//!
//! Each family runs under [`InterpMode::Reference`] (operands re-derived
//! from the `Op` enum on every scheduler visit) and [`InterpMode::Micro`]
//! (decoded micro-op cache plus per-warp issue gates), asserting
//! bit-identical [`KernelStats`] along the way — the bench doubles as an
//! in-process differential check on the full Orin configuration, which the
//! unit-sized `tests/interp_equivalence.rs` suite cannot reach. GEMM
//! families time `Gpu::launch` directly; driver-level families time the
//! whole call, which is what the figures harness pays.
//!
//! The micro-op win is issue-shaped: the full-occupancy ViT Linear GEMM
//! spends nearly every scheduler visit rejecting a stalled warp, which the
//! fast path answers from two array loads, while memory-bound families
//! with fast-forward on skip most of their silent cycles outright and see
//! a smaller (but still positive) gain.
//!
//! Results splice an `"interp"` section into `BENCH_sim.json` at the repo
//! root (idempotently — an existing section is replaced); EXPERIMENTS.md
//! records a reference run. `--smoke` runs the gemm_tc_linear family only
//! and asserts the acceptance floor — CI uses it as a relative perf guard
//! that is robust to slow shared runners.
//!
//! A second pass re-times every family under the micro-op interpreter with
//! the lane-plane vector executor forced off and on
//! ([`vitbit_sim::plane::set_vector`]), asserting identical stats (the
//! vector bodies must be bit-exact), and attributes execute-body wall to
//! pipes via [`vitbit_sim::profile`]; this lands as an `"exec_vector"`
//! section in the same JSON. `--smoke-vector` runs the relative guard CI
//! uses (vector >= 1.2x scalar on gemm_tc_linear, skipped without SIMD).

use std::hint::black_box;
use std::time::Duration;
use vitbit_bench::timing::bench;
use vitbit_core::policy::PackSpec;
use vitbit_exec::{ExecConfig, Strategy};
use vitbit_kernels::elementwise::{run_map, EwVariant, MapOp};
use vitbit_kernels::gemm::cuda::M_PAD;
use vitbit_kernels::gemm::tc::{
    tc_args, tc_gemm_program, tc_smem_bytes, tile_a_for_tc, TC_K_UNIT, TC_N_TILE,
};
use vitbit_kernels::shapes::{pad_matrix, pad_to};
use vitbit_plan::{Engine, GemmDesc};
use vitbit_sim::{plane, profile, ExecProfile, Gpu, InterpMode, Kernel, KernelStats, OrinConfig};
use vitbit_tensor::gen;
use vitbit_vit::{run_vit_planned, ViTConfig, ViTModel, VitPlan};

fn orin_gpu(interp: InterpMode, mem_bytes: u32) -> Gpu {
    let mut cfg = OrinConfig::jetson_agx_orin();
    cfg.interp = interp;
    Gpu::new(cfg, mem_bytes)
}

/// One family's paired measurement (reference vs micro-op interpreter).
struct Family {
    name: &'static str,
    workload: String,
    ref_wall: Duration,
    micro_wall: Duration,
    stats: KernelStats,
}

impl Family {
    fn speedup(&self) -> f64 {
        self.ref_wall.as_secs_f64() / self.micro_wall.as_secs_f64().max(1e-12)
    }
}

/// Times one closure under both interpreters and checks the micro-op path
/// is invisible in every statistic the simulator reports.
fn measure(
    name: &'static str,
    workload: String,
    mut run: impl FnMut(InterpMode) -> (Duration, KernelStats),
) -> Family {
    let (ref_wall, reference) = run(InterpMode::Reference);
    let (micro_wall, micro) = run(InterpMode::Micro);
    assert_eq!(
        reference, micro,
        "{name}: micro-op interpreter changed the simulated statistics"
    );
    println!(
        "  {name}: cycles {} reference {:?} micro {:?} speedup {:.2}x",
        micro.cycles,
        ref_wall,
        micro_wall,
        ref_wall.as_secs_f64() / micro_wall.as_secs_f64().max(1e-12),
    );
    Family {
        name,
        workload,
        ref_wall,
        micro_wall,
        stats: micro,
    }
}

/// Builds the standalone Tensor-core GEMM launch exactly as
/// `gemm::tc::run_tc` does (see `sim_fastforward.rs` for the rationale);
/// `row_blocks = u32::MAX` covers every output row.
fn tc_launch(gpu: &mut Gpu, m: usize, k: usize, n: usize, row_blocks: u32) -> Kernel {
    let a = gen::uniform_i8(m, k, -32, 31, 5);
    let b = gen::uniform_i8(k, n, -32, 31, 6);
    let mp = pad_to(m, M_PAD);
    let np = pad_to(n, TC_N_TILE);
    let kp = pad_to(k, TC_K_UNIT);
    let a_pad = pad_matrix(&a, mp, kp + 2 * TC_K_UNIT);
    let b_pad = pad_matrix(&b, kp + 2 * TC_K_UNIT, np);
    let a_ptr = gpu.mem.upload_i8(&tile_a_for_tc(&a_pad)).addr;
    let b_ptr = gpu.mem.upload_i8(b_pad.as_slice()).addr;
    let c_dev = gpu.mem.alloc((mp * np * 4) as u32);
    let blocks_x = (np / TC_N_TILE) as u32;
    let blocks = blocks_x * row_blocks.min((mp / 32) as u32);
    Kernel::single(
        "gemm_tc",
        tc_gemm_program(2, 0).into_arc(),
        blocks,
        8,
        tc_smem_bytes(2),
        tc_args(
            a_ptr,
            b_ptr,
            c_dev.addr,
            blocks_x,
            kp as u32,
            np as u32,
            (mp * 16) as u32,
        ),
    )
}

fn gemm_tc_family(
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    row_blocks: u32,
    samples: usize,
) -> Family {
    measure(
        name,
        format!("tc gemm {m}x{k}x{n}, direct launch"),
        |interp| {
            let mut gpu = orin_gpu(interp, 32 << 20);
            let kernel = tc_launch(&mut gpu, m, k, n, row_blocks);
            let mut stats = KernelStats::default();
            let wall = bench(&format!("sim_interp/{name}/{interp:?}"), samples, || {
                gpu.cold_caches();
                stats = gpu.launch(&kernel).expect("launch");
                black_box(stats.cycles)
            });
            (wall, stats)
        },
    )
}

fn fused_vitbit_family() -> Family {
    let (m, k, n) = (64usize, 512, 512);
    let a = gen::uniform_i8(m, k, -32, 31, 7);
    let b = gen::uniform_i8(k, n, -32, 31, 8);
    let cfg = ExecConfig::guarded(6);
    measure(
        "gemm_fused_vitbit",
        format!("fused vitbit gemm {m}x{k}x{n}, full driver"),
        |interp| {
            let mut gpu = orin_gpu(interp, 32 << 20);
            let mut engine = Engine::new();
            let mut desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &gpu, m, k, n, Some(1));
            desc.adaptive = false;
            let id = engine.prepare(desc).expect("prepare");
            let mut stats = KernelStats::default();
            let wall = bench(
                &format!("sim_interp/gemm_fused_vitbit/{interp:?}"),
                3,
                || {
                    gpu.cold_caches();
                    stats = engine.execute(&mut gpu, id, &a, &b).expect("execute").stats;
                    black_box(stats.cycles)
                },
            );
            (wall, stats)
        },
    )
}

fn elementwise_family() -> Family {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let x = gen::uniform_i8(197, 768, -32, 31, 9);
    measure(
        "elementwise_gelu",
        "gelu over 197x768 int6 codes (vitbit packed variant), full driver".into(),
        |interp| {
            let mut gpu = orin_gpu(interp, 16 << 20);
            let mut stats = KernelStats::default();
            let wall = bench(
                &format!("sim_interp/elementwise_gelu/{interp:?}"),
                5,
                || {
                    gpu.cold_caches();
                    stats = run_map(
                        &mut gpu,
                        MapOp::Gelu,
                        EwVariant::VitBit(spec),
                        6,
                        x.as_slice(),
                        None,
                    )
                    .stats;
                    black_box(stats.cycles)
                },
            );
            (wall, stats)
        },
    )
}

fn vit_block_family() -> Family {
    let model = ViTModel::new(ViTConfig::tiny(), 7);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(3);
    measure(
        "vit_block",
        "one tiny ViT encoder block under the VitBit strategy".into(),
        |interp| {
            let mut gpu = orin_gpu(interp, 64 << 20);
            let mut engine = Engine::new();
            let plan = VitPlan::build(&mut engine, &gpu, &model, Strategy::VitBit, &cfg, Some(1));
            let mut acc = KernelStats::default();
            let wall = bench(&format!("sim_interp/vit_block/{interp:?}"), 3, || {
                let r = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x);
                acc = KernelStats::default();
                for t in &r.timings {
                    acc.accumulate(&t.stats);
                }
                black_box(r.logits)
            });
            (wall, acc)
        },
    )
}

/// One family's scalar-vs-vector executor measurement, micro-op
/// interpreter throughout, plus a per-pipe execute-wall attribution taken
/// on a separate profiled pass (the timing legs run unprofiled: the two
/// clock reads per execute would inflate the vector wall).
struct VectorFamily {
    name: &'static str,
    scalar_wall: Duration,
    vector_wall: Duration,
    /// False when the host CPU has no AVX2+FMA: the "vector" leg then ran
    /// the scalar bodies and the speedup is definitionally ~1.
    simd: bool,
    profile: ExecProfile,
}

impl VectorFamily {
    fn speedup(&self) -> f64 {
        self.scalar_wall.as_secs_f64() / self.vector_wall.as_secs_f64().max(1e-12)
    }
}

/// Times `run` with the vector executor forced off, then on, asserting
/// bit-identical stats, then takes one profiled pass for the attribution.
/// Leaves the process in the default (vector-if-supported) mode.
fn measure_vector(
    name: &'static str,
    samples: usize,
    mut run: impl FnMut(usize, &str) -> (Duration, KernelStats),
) -> VectorFamily {
    let simd = plane::set_vector(true);
    plane::set_vector(false);
    let (scalar_wall, scalar_stats) = run(samples, "scalar");
    plane::set_vector(true);
    let (vector_wall, vector_stats) = run(samples, "vector");
    assert_eq!(
        scalar_stats, vector_stats,
        "{name}: vector executor changed the simulated statistics"
    );
    profile::reset();
    profile::set_enabled(true);
    let _ = run(1, "profiled");
    profile::set_enabled(false);
    let prof = profile::snapshot();
    let f = VectorFamily {
        name,
        scalar_wall,
        vector_wall,
        simd,
        profile: prof,
    };
    let exec_ms = prof.total_ns() as f64 / 1e6;
    println!(
        "  {name}: scalar {scalar_wall:?} vector {vector_wall:?} speedup {:.2}x{} \
         (execute bodies {exec_ms:.1}ms: {})",
        f.speedup(),
        if simd { "" } else { " [no SIMD on host]" },
        (0..6)
            .filter(|&i| prof.ns[i] > 0)
            .map(|i| format!("{} {:.1}ms", profile::pipe_name(i), prof.ns[i] as f64 / 1e6))
            .collect::<Vec<_>>()
            .join(", "),
    );
    f
}

fn vector_gemm_tc_family(
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    row_blocks: u32,
    samples: usize,
) -> VectorFamily {
    measure_vector(name, samples, |samples, leg| {
        let mut gpu = orin_gpu(InterpMode::Micro, 32 << 20);
        let kernel = tc_launch(&mut gpu, m, k, n, row_blocks);
        let mut stats = KernelStats::default();
        let wall = bench(&format!("exec_vector/{name}/{leg}"), samples, || {
            gpu.cold_caches();
            stats = gpu.launch(&kernel).expect("launch");
            black_box(stats.cycles)
        });
        (wall, stats)
    })
}

fn vector_elementwise_family() -> VectorFamily {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let x = gen::uniform_i8(197, 768, -32, 31, 9);
    measure_vector("elementwise_gelu", 5, |samples, leg| {
        let mut gpu = orin_gpu(InterpMode::Micro, 16 << 20);
        let mut stats = KernelStats::default();
        let wall = bench(
            &format!("exec_vector/elementwise_gelu/{leg}"),
            samples,
            || {
                gpu.cold_caches();
                stats = run_map(
                    &mut gpu,
                    MapOp::Gelu,
                    EwVariant::VitBit(spec),
                    6,
                    x.as_slice(),
                    None,
                )
                .stats;
                black_box(stats.cycles)
            },
        );
        (wall, stats)
    })
}

fn vector_fused_family() -> VectorFamily {
    let (m, k, n) = (64usize, 512, 512);
    let a = gen::uniform_i8(m, k, -32, 31, 7);
    let b = gen::uniform_i8(k, n, -32, 31, 8);
    let cfg = ExecConfig::guarded(6);
    measure_vector("gemm_fused_vitbit", 3, |samples, leg| {
        let mut gpu = orin_gpu(InterpMode::Micro, 32 << 20);
        let mut engine = Engine::new();
        let mut desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &gpu, m, k, n, Some(1));
        desc.adaptive = false;
        let id = engine.prepare(desc).expect("prepare");
        let mut stats = KernelStats::default();
        let wall = bench(
            &format!("exec_vector/gemm_fused_vitbit/{leg}"),
            samples,
            || {
                gpu.cold_caches();
                stats = engine.execute(&mut gpu, id, &a, &b).expect("execute").stats;
                black_box(stats.cycles)
            },
        );
        (wall, stats)
    })
}

fn vector_vit_family() -> VectorFamily {
    let model = ViTModel::new(ViTConfig::tiny(), 7);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(3);
    measure_vector("vit_block", 3, |samples, leg| {
        let mut gpu = orin_gpu(InterpMode::Micro, 64 << 20);
        let mut engine = Engine::new();
        let plan = VitPlan::build(&mut engine, &gpu, &model, Strategy::VitBit, &cfg, Some(1));
        let mut acc = KernelStats::default();
        let wall = bench(&format!("exec_vector/vit_block/{leg}"), samples, || {
            let r = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x);
            acc = KernelStats::default();
            for t in &r.timings {
                acc.accumulate(&t.stats);
            }
            black_box(r.logits)
        });
        (wall, acc)
    })
}

/// Splices an `"interp"` section into `BENCH_sim.json`, replacing any
/// existing one: the file is owned by `sim_fastforward` (which rewrites it
/// wholesale), so this bench only ever appends its own sections before the
/// closing brace.
fn write_json(families: &[Family], vector: &[VectorFamily]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let base = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    // Idempotency: drop previously spliced sections (they are always the
    // last keys before the closing brace; cut at the earliest marker).
    let markers = [
        ",\n  \"interp\":",
        ",\n  \"exec_vector\":",
        ",\n  \"serving\":",
    ];
    let base = match markers.iter().filter_map(|m| base.find(m)).min() {
        Some(at) => format!("{}\n}}\n", &base[..at]),
        None => base,
    };
    let mut rows = Vec::new();
    for f in families {
        rows.push(format!(
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"simulated_cycles\": {}, \
             \"wall_ns_reference\": {}, \"wall_ns_micro\": {}, \"speedup\": {:.3}}}",
            f.name,
            f.workload,
            f.stats.cycles,
            f.ref_wall.as_nanos(),
            f.micro_wall.as_nanos(),
            f.speedup(),
        ));
    }
    let mut vrows = Vec::new();
    for f in vector {
        let pipes = |vals: [u64; 6]| {
            (0..6)
                .map(|i| format!("\"{}\": {}", profile::pipe_name(i), vals[i]))
                .collect::<Vec<_>>()
                .join(", ")
        };
        vrows.push(format!(
            "    {{\"family\": \"{}\", \"simd\": {}, \"wall_ns_scalar\": {}, \
             \"wall_ns_vector\": {}, \"speedup\": {:.3}, \"exec_ns\": {{{}}}, \
             \"exec_calls\": {{{}}}}}",
            f.name,
            f.simd,
            f.scalar_wall.as_nanos(),
            f.vector_wall.as_nanos(),
            f.speedup(),
            pipes(f.profile.ns),
            pipes(f.profile.calls),
        ));
    }
    let trimmed = base.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("BENCH_sim.json ends with an object")
        .trim_end();
    let json = format!(
        "{body},\n  \"interp\": [\n{}\n  ],\n  \"exec_vector\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        vrows.join(",\n")
    );
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let smoke_vector = std::env::args().any(|a| a == "--smoke-vector");
    if smoke_vector {
        // CI perf guard for the lane-plane executor: relative (scalar vs
        // vector in the same process), so it cannot flake on absolute
        // runner speed. Skipped (with a note) on hosts without AVX2+FMA,
        // where both legs run the same scalar bodies.
        //
        // Floor calibration (EXPERIMENTS.md §exec-vector has the full
        // attribution): the vector bodies themselves are 2-3x the scalar
        // ones, but both legs share the scheduler/scoreboard wall, which
        // caps the end-to-end ratio near ~1.4x on a 1-core cloud host
        // (measured 1.29-1.46x across runs). The smoke threshold is 1.2x
        // so a noisy shared runner never false-fails; absolute walls per
        // family are recorded in BENCH_sim.json `exec_vector` for trend
        // tracking.
        println!("-- vector executor smoke (gemm_tc_linear) --");
        let f = vector_gemm_tc_family("gemm_tc_linear", 197, 768, 768, u32::MAX, 3);
        if !f.simd {
            println!("host has no AVX2+FMA: scalar fallback verified, perf floor skipped");
            return;
        }
        println!(
            "gemm_tc_linear vector speedup: {:.2}x (smoke floor 1.2x)",
            f.speedup()
        );
        assert!(
            f.speedup() >= 1.2,
            "vector executor regressed: {:.2}x < 1.2x on gemm_tc_linear",
            f.speedup()
        );
        return;
    }
    if smoke {
        // CI perf guard: relative (micro vs reference in the same
        // process), so it cannot flake on absolute runner speed. The
        // acceptance floor for the issue is 5x on this family; the smoke
        // threshold is 2x so a noisy shared runner never false-fails.
        println!("-- micro-op interpreter smoke (gemm_tc_linear) --");
        let f = gemm_tc_family("gemm_tc_linear", 197, 768, 768, u32::MAX, 3);
        println!(
            "gemm_tc_linear interp speedup: {:.2}x (smoke floor 2x)",
            f.speedup()
        );
        assert!(
            f.speedup() >= 2.0,
            "micro-op interpreter regressed: {:.2}x < 2x on gemm_tc_linear",
            f.speedup()
        );
        return;
    }
    println!("-- micro-op interpreter vs reference, per kernel family --");
    let families = vec![
        gemm_tc_family("gemm_tc_membound", 32, 3072, 64, 1, 5),
        // The acceptance workload: full-occupancy issue-bound TC GEMM.
        gemm_tc_family("gemm_tc_linear", 197, 768, 768, u32::MAX, 3),
        fused_vitbit_family(),
        elementwise_family(),
        vit_block_family(),
    ];
    println!("-- lane-plane vector executor vs scalar, per kernel family --");
    let vector = vec![
        vector_gemm_tc_family("gemm_tc_membound", 32, 3072, 64, 1, 5),
        vector_gemm_tc_family("gemm_tc_linear", 197, 768, 768, u32::MAX, 3),
        vector_fused_family(),
        vector_elementwise_family(),
        vector_vit_family(),
    ];
    write_json(&families, &vector);
    let linear = &families[1];
    println!(
        "gemm_tc_linear interp speedup: {:.2}x (acceptance floor 5x, target 10x)",
        linear.speedup()
    );
}
