//! The plan/execute engine: [`Engine::prepare`] resolves a [`GemmDesc`]
//! into a cached [`GemmPlan`]; [`Engine::execute`] runs it per request.

use crate::strategy::Strategy;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::CoreRatio;
use vitbit_kernels::gemm::{
    abft, execute_fused, plan_fused, prepare_fused_b, run_fc_with_pass, run_ic_fc_with_pass,
    run_ic_with_pass, run_tc, run_tc_with_pass, weight_row_sums, FusedB, FusedBody, FusedMode,
    FusedPlan, GemmError, GemmOut, PackedWeightCache, ProgPass,
};
use vitbit_sim::{Gpu, KernelStats, OrinConfig, Program, SchedPolicy, SimMode};
use vitbit_tensor::refgemm::{gemm_i8_i32, gemm_i8_i32_fast};
use vitbit_tensor::Matrix;

/// The simulator knobs that shape a launch plan's measured behavior.
/// Part of the plan key: plans built for one machine configuration are
/// not served to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKnobs {
    /// Warp scheduling policy.
    pub sched: SchedPolicy,
    /// Serial or parallel simulation.
    pub sim_mode: SimMode,
    /// Event-horizon fast-forward on/off.
    pub fast_forward: bool,
}

impl SimKnobs {
    /// Extracts the knobs from a machine configuration.
    pub fn from_config(cfg: &OrinConfig) -> Self {
        Self {
            sched: cfg.sched,
            sim_mode: cfg.sim_mode,
            fast_forward: cfg.fast_forward,
        }
    }

    /// Extracts the knobs from a live GPU.
    pub fn of(gpu: &Gpu) -> Self {
        Self::from_config(gpu.config())
    }
}

/// A complete description of a GEMM the engine may be asked to run: the
/// plan-cache key. Everything launch-relevant is here; operand *values*
/// are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmDesc {
    /// Output rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Table-3 strategy.
    pub strategy: Strategy,
    /// Signed code bitwidth of the quantized values.
    pub bitwidth: u32,
    /// Packing spec used by the VitBit paths.
    pub spec: PackSpec,
    /// Tensor:CUDA column ratio (`None` = the mode's calibrated default).
    pub ratio: Option<CoreRatio>,
    /// Measure-and-choose dispatch for the fused methods (see
    /// [`crate::strategy::ExecConfig::adaptive`]).
    pub adaptive: bool,
    /// Identity of the stationary `B` operand when it is a weight: the
    /// engine stages (packs) it once and reuses the artifacts on every
    /// execute. `None` marks an activation-valued `B` (attention scores,
    /// `probs x V`), staged per request.
    pub weight: Option<u64>,
    /// Verify every execute with Huang–Abraham row/column checksums
    /// (see [`vitbit_kernels::gemm::abft`]); a failed check engages the
    /// recovery ladder exactly like a launch fault.
    pub abft: bool,
    /// Statically verify this plan's programs (lane safety, hazard
    /// freedom) at prepare time via the engine's installed
    /// [`PlanVerifier`]; prepare fails closed with
    /// [`EngineError::Unverified`] when no verifier is installed.
    pub verify: bool,
    /// Statically reschedule this plan's programs with `vitbit-sched`
    /// before launch. Fail-closed: a scheduled program is adopted only
    /// when the engine's installed [`ProgramCheck`] re-proves it —
    /// otherwise (including when no check is installed) the program
    /// launches exactly as emitted.
    pub sched: bool,
    /// Simulator knobs the plan was built for.
    pub knobs: SimKnobs,
}

impl GemmDesc {
    /// Builds a desc from an [`crate::strategy::ExecConfig`] and a live
    /// GPU (the common construction).
    pub fn from_exec(
        strategy: Strategy,
        cfg: &crate::strategy::ExecConfig,
        gpu: &Gpu,
        m: usize,
        k: usize,
        n: usize,
        weight: Option<u64>,
    ) -> Self {
        Self {
            m,
            k,
            n,
            strategy,
            bitwidth: cfg.bitwidth,
            spec: cfg.spec,
            ratio: cfg.ratio,
            adaptive: cfg.adaptive,
            weight,
            abft: cfg.abft,
            verify: cfg.verify_plans,
            sched: cfg.schedule_kernels,
            knobs: SimKnobs::of(gpu),
        }
    }

    /// The fused-kernel mode this desc's strategy maps to, when fused.
    pub fn fused_mode(&self) -> Option<FusedMode> {
        match self.strategy {
            Strategy::Tacker => Some(FusedMode::Tacker),
            Strategy::TcIcFc => Some(FusedMode::TcIcFc),
            Strategy::VitBit => Some(FusedMode::VitBit(self.spec)),
            _ => None,
        }
    }
}

/// Opaque handle to a cached plan, returned by [`Engine::prepare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(u64);

/// Fixed policy-resolution cost of a direct (non-fused) plan, in build
/// work units.
const DIRECT_POLICY_UNITS: u64 = 16;

#[derive(Debug, Clone)]
pub(crate) enum PlanBody {
    /// Tc / Ic / Fc / IcFc: a single standalone driver, no plan state
    /// beyond the dispatch decision.
    Direct,
    /// A fused launch plan plus (for weight `B`s) its staged operands.
    Fused {
        plan: Arc<FusedPlan>,
        staged: Option<Arc<FusedB>>,
    },
}

/// A prepared GEMM: the resolved launch decisions for one [`GemmDesc`].
#[derive(Debug, Clone)]
pub struct GemmPlan {
    /// The desc this plan answers.
    pub desc: GemmDesc,
    pub(crate) body: PlanBody,
    /// Build work performed but not yet attributed to an execute.
    pub(crate) pending_build: u64,
    /// Verification proof attached at prepare (or import) time, when the
    /// desc asked for verification.
    pub(crate) proof: Option<PlanProof>,
    last_use: u64,
}

impl GemmPlan {
    /// A plan restored from a persisted cache: fully materialized, zero
    /// pending build work, carrying its persisted proof.
    pub(crate) fn imported(desc: GemmDesc, body: PlanBody, proof: Option<PlanProof>) -> Self {
        Self {
            desc,
            body,
            pending_build: 0,
            proof,
            last_use: 0,
        }
    }

    /// The fused launch plan, when this strategy fuses.
    pub fn fused(&self) -> Option<&FusedPlan> {
        match &self.body {
            PlanBody::Fused { plan, .. } => Some(plan),
            PlanBody::Direct => None,
        }
    }

    /// The verification proof this plan carries, when it was verified
    /// (live or restored from a persisted cache).
    pub fn proof(&self) -> Option<&PlanProof> {
        self.proof.as_ref()
    }

    /// Whether the stationary weight operand is already staged (packed
    /// and upload-shaped). Always `false` for activation-`B` plans.
    pub fn weight_staged(&self) -> bool {
        matches!(
            &self.body,
            PlanBody::Fused {
                staged: Some(_),
                ..
            }
        )
    }
}

/// LRU cache of prepared plans, keyed by [`GemmDesc`].
#[derive(Debug)]
pub struct PlanCache {
    by_desc: HashMap<GemmDesc, PlanId>,
    slots: HashMap<PlanId, GemmPlan>,
    capacity: usize,
    tick: u64,
    next_id: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// Default number of cached plans — generous for a full ViT encoder
    /// (a dozen distinct shapes per strategy).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Empty cache holding at most `capacity` plans.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            by_desc: HashMap::new(),
            slots: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            next_id: 0,
        }
    }

    /// Cached plans.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn touch(&mut self, id: PlanId) {
        self.tick += 1;
        if let Some(p) = self.slots.get_mut(&id) {
            p.last_use = self.tick;
        }
    }

    fn lookup(&mut self, desc: &GemmDesc) -> Option<PlanId> {
        let id = *self.by_desc.get(desc)?;
        self.touch(id);
        Some(id)
    }

    fn insert(&mut self, plan: GemmPlan) -> PlanId {
        let id = PlanId(self.next_id);
        self.next_id += 1;
        self.by_desc.insert(plan.desc, id);
        self.slots.insert(id, plan);
        self.touch(id);
        if self.slots.len() > self.capacity {
            // Evict the least-recently-used plan.
            if let Some((&victim, _)) = self.slots.iter().min_by_key(|(_, p)| p.last_use) {
                if let Some(p) = self.slots.remove(&victim) {
                    self.by_desc.remove(&p.desc);
                }
            }
        }
        id
    }
}

/// Cumulative engine-side counters, mirrored per launch into
/// [`vitbit_sim::KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `prepare` calls answered from the plan cache.
    pub plan_cache_hits: u64,
    /// `prepare` calls that built a new plan.
    pub plan_cache_misses: u64,
    /// Total plan-build work units (policy resolution + weight staging).
    pub plan_build_units: u64,
    /// `execute` calls served.
    pub executes: u64,
    /// Faults the engine observed: failed launches plus ABFT checksum
    /// mismatches on otherwise-successful launches.
    pub faults_detected: u64,
    /// Recovery-ladder re-attempts (plain re-execute and rebuild+retry).
    pub retries: u64,
    /// Recovery-ladder strategy fallbacks to the plain Tensor-core driver.
    pub fallbacks: u64,
    /// Plans quarantined after exhausting the ladder; their executes are
    /// served by the host reference GEMM until [`Engine::invalidate`].
    pub quarantined_plans: u64,
    /// Times the installed [`PlanVerifier`] actually ran (cache hits and
    /// persisted-proof imports skip it — the cold-boot zero-reverification
    /// claim is asserted on this counter).
    pub verifier_invocations: u64,
    /// [`Engine::execute_batch`] calls served.
    pub batches: u64,
    /// Requests served through [`Engine::execute_batch`].
    pub batch_requests: u64,
    /// Batch requests served by steady-state replay (converged simulated
    /// stats + host-exact output) instead of a live launch.
    pub replayed_executes: u64,
    /// Plans admitted from a persisted plan cache (zero policy resolution,
    /// zero re-verification).
    pub plans_imported: u64,
    /// Persisted entries rejected at import (stale version, checksum
    /// mismatch, invariant violation) — each fails closed to a live
    /// `prepare` on next use.
    pub plans_rejected: u64,
    /// Pool-routed requests that landed on a shard already holding the
    /// desc's plan (stamped by `GpuPool`; always zero for a bare engine).
    pub affinity_hits: u64,
    /// Pool-routed requests that had to build their plan on the routed
    /// shard (stamped by `GpuPool`; always zero for a bare engine).
    pub affinity_misses: u64,
    /// `submit` calls refused by admission control: the pending queue was
    /// at its configured bound (see [`Engine::set_queue_bound`]).
    pub overload_rejections: u64,
    /// Distinct emitted programs the static scheduler improved *and* the
    /// installed [`ProgramCheck`] re-proved — these launch rescheduled.
    pub sched_applied: u64,
    /// Distinct scheduler candidates discarded by the fail-closed gate:
    /// the re-proof failed, or no [`ProgramCheck`] was installed.
    pub sched_rejected: u64,
}

impl EngineStats {
    /// Fraction of pool-routed requests that found their plan already
    /// resident on the routed shard; 1.0 when nothing was routed.
    pub fn affinity_hit_rate(&self) -> f64 {
        let total = self.affinity_hits + self.affinity_misses;
        if total == 0 {
            1.0
        } else {
            self.affinity_hits as f64 / total as f64
        }
    }
}

/// Why [`Engine::execute`] refused a request. Faults do **not** surface
/// here — the recovery ladder absorbs them (worst case: a host-reference
/// result); these are caller errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The handle does not name a cached plan: never prepared, evicted by
    /// the LRU, or removed by [`Engine::invalidate`].
    UnknownPlan(PlanId),
    /// Operand shapes disagree with the plan's desc.
    ShapeMismatch {
        /// `(m, k, n)` of the plan.
        expected: (usize, usize, usize),
        /// `(rows, cols)` of the `A` operand.
        a: (usize, usize),
        /// `(rows, cols)` of the `B` operand.
        b: (usize, usize),
    },
    /// The desc asked for static verification ([`GemmDesc::verify`]) and
    /// the plan's programs could not be proven safe — or no verifier is
    /// installed at all (verification fails closed, never open).
    Unverified {
        /// Rendered violations, one string per defect; a single entry
        /// explaining the absence when no verifier is installed.
        violations: Vec<String>,
    },
    /// Backpressure: the submission queue is at its configured bound
    /// ([`Engine::set_queue_bound`]). The request was **not** enqueued —
    /// the caller should drain before submitting more.
    Overloaded {
        /// Requests already pending on the refusing engine.
        pending: usize,
        /// The configured queue bound that was hit.
        bound: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownPlan(id) => {
                write!(f, "unknown or evicted PlanId ({})", id.0)
            }
            EngineError::ShapeMismatch { expected, a, b } => write!(
                f,
                "operand shapes A{a:?} x B{b:?} do not match the plan's \
                 (m, k, n) = {expected:?}"
            ),
            EngineError::Unverified { violations } => write!(
                f,
                "plan rejected by static verification ({} violation(s)): {}",
                violations.len(),
                violations.join("; ")
            ),
            EngineError::Overloaded { pending, bound } => write!(
                f,
                "submission refused: {pending} request(s) pending at the \
                 configured queue bound of {bound} — drain before submitting"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The serializable summary of a successful static verification: enough
/// to persist alongside a plan so a cold replica can prove "this desc's
/// programs were verified" without re-running the analyzer. The full
/// machine-checkable facts live in `vitbit-verify`'s `ProofReport`; this
/// is its stable, dependency-free projection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProof {
    /// Human-readable subject line (strategy, shape, spec).
    pub subject: String,
    /// Per-program proof summary: `(program name, ops proven safe)`.
    pub programs: Vec<(String, u64)>,
}

/// The callback shape a [`PlanVerifier`] wraps: the desc about to be
/// planned in; a proof summary out on success, rendered violations out
/// on rejection.
type VerifyFn = dyn Fn(&GemmDesc) -> Result<PlanProof, Vec<String>> + Send + Sync;

/// A prepare-time static plan checker. The implementation lives in the
/// `vitbit-verify` crate (which depends on this one); the engine holds
/// it as an opaque injected callback so the dependency stays acyclic.
#[derive(Clone)]
pub struct PlanVerifier(Arc<VerifyFn>);

impl PlanVerifier {
    /// Wraps a checking function.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(&GemmDesc) -> Result<PlanProof, Vec<String>> + Send + Sync + 'static,
    {
        Self(Arc::new(f))
    }

    /// Checks one desc.
    ///
    /// # Errors
    /// The rendered violations when the desc's plan cannot be proven
    /// safe.
    pub fn check(&self, desc: &GemmDesc) -> Result<PlanProof, Vec<String>> {
        (self.0)(desc)
    }
}

impl std::fmt::Debug for PlanVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PlanVerifier(..)")
    }
}

/// The callback shape a [`ProgramCheck`] wraps: one concrete program (the
/// scheduler's candidate) plus the desc it will serve; `Ok` admits it,
/// rendered violations reject it.
type ProgramCheckFn = dyn Fn(&Program, &GemmDesc) -> Result<(), Vec<String>> + Send + Sync;

/// A launch-time static program checker: the second half of the
/// scheduler's fail-closed gate. `vitbit-sched` proves each candidate is a
/// dependence-respecting permutation; this check (implemented in
/// `vitbit-verify`, injected like [`PlanVerifier`] to keep the dependency
/// acyclic) re-proves lane safety and hazard freedom on the *scheduled*
/// instruction stream. Candidates failing either layer — or arriving when
/// no check is installed — are discarded and the unscheduled program
/// launches.
#[derive(Clone)]
pub struct ProgramCheck(Arc<ProgramCheckFn>);

impl ProgramCheck {
    /// Wraps a checking function.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(&Program, &GemmDesc) -> Result<(), Vec<String>> + Send + Sync + 'static,
    {
        Self(Arc::new(f))
    }

    /// Checks one scheduled program against the desc it will serve.
    ///
    /// # Errors
    /// The rendered violations when the program cannot be proven safe.
    pub fn check(&self, program: &Program, desc: &GemmDesc) -> Result<(), Vec<String>> {
        (self.0)(program, desc)
    }
}

impl std::fmt::Debug for ProgramCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgramCheck(..)")
    }
}

/// Memoized scheduler outcomes, keyed by program identity (name, register
/// footprint and full instruction stream). One entry per distinct emitted
/// program: `Some` holds the admitted rescheduled program, `None` records
/// "leave as emitted" (no improvement found, or the fail-closed gate
/// rejected the candidate). Interior-mutable so the pass can run from the
/// `&self` build paths without threading `&mut` through the drivers.
#[derive(Debug, Default)]
struct SchedMemo {
    cache: HashMap<u64, Option<Arc<Program>>>,
    applied: u64,
    rejected: u64,
}

/// How one request was served (see [`Engine::execute_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePath {
    /// A live simulated launch — the sequential-path behavior.
    Launched,
    /// Steady-state replay: the request was answered with the plan's
    /// converged launch statistics and a host-exact output, without
    /// occupying the simulated machine. Bit-identical to a live launch.
    Replayed,
    /// The host reference GEMM (quarantined plan, or the recovery ladder
    /// exhausted on this request).
    Host,
}

/// Which rung of the §9 recovery ladder observed a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Rung 0: the plan exactly as prepared.
    Initial,
    /// Rung 1: plain re-execute of the same plan (transient-fault retry).
    Retry,
    /// Rung 2: rebuild from the desc, then re-execute (poisoned cache).
    Rebuild,
    /// Rung 3: the plain Tensor-core fallback driver.
    TcFallback,
}

/// Why one ladder attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCause {
    /// The launch itself failed: a watchdog timeout (hung SM) or a
    /// contained fault — the concrete [`vitbit_sim::LaunchError`] rides
    /// inside the [`GemmError`].
    Launch(GemmError),
    /// The launch completed but the Huang–Abraham checksum rejected its
    /// output ([`GemmDesc::abft`]).
    AbftMismatch,
}

/// One observed failure while walking the recovery ladder: which rung
/// failed, and the concrete cause. A request that quarantined its plan
/// carries the full failure trail; a clean serve carries none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderEvent {
    /// The rung whose attempt failed.
    pub rung: LadderRung,
    /// What went wrong on that attempt.
    pub cause: FaultCause,
}

/// One request's result inside a [`BatchResult`].
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The GEMM result and its per-request stats — bit-identical to what
    /// a sequential [`Engine::execute`] of the same request returns.
    pub out: GemmOut,
    /// How this request was served.
    pub served: ServePath,
    /// Faults the engine observed serving this request (failed launches
    /// plus ABFT mismatches).
    pub faults: u64,
    /// Recovery-ladder re-attempts spent on this request.
    pub retries: u64,
    /// The concrete failure trail behind `faults`/`retries`: one event
    /// per failed ladder attempt, in the order they happened. Empty on a
    /// clean serve (and on the quarantined fast path, where no new
    /// attempt is made — the plan already exhausted its ladder earlier).
    pub ladder: Vec<LadderEvent>,
}

impl RequestOutcome {
    /// The deepest rung that failed serving this request, when any did.
    pub fn deepest_rung(&self) -> Option<LadderRung> {
        self.ladder.last().map(|e| e.rung)
    }
}

/// Per-request outcomes of one [`Engine::execute_batch`] call, in
/// request order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One outcome per request.
    pub outcomes: Vec<RequestOutcome>,
}

impl BatchResult {
    /// Requests served by steady-state replay.
    pub fn replayed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.served == ServePath::Replayed)
            .count()
    }

    /// Requests answered by the host reference (quarantine path).
    pub fn hosted(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.served == ServePath::Host)
            .count()
    }
}

/// A converged launch observation: proof that serving this plan again
/// from the same timing state reproduces exactly these statistics.
///
/// Validity rests on two machine facts: GEMM kernel timing is
/// value-independent (addresses and schedules depend only on the plan),
/// and the L2 tag array is the *only* timing state that persists across
/// launches. A launch observed to map the L2 fingerprint onto itself is
/// therefore a fixed point — every subsequent launch of the same plan
/// from that state is cycle-identical.
#[derive(Debug, Clone)]
struct ReplayEntry {
    /// Fingerprint of the machine configuration the entry was recorded
    /// on; one engine may legally serve differently-configured GPUs.
    cfg_fp: u64,
    /// The L2 fixed-point fingerprint (equal before and after the
    /// recorded launch).
    fp: u64,
    /// The launch statistics at the fixed point, pre-attribution (the
    /// engine counters are stamped per serve, exactly as live).
    stats: KernelStats,
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints every timing-relevant scalar of a machine configuration.
/// Hashes the `Debug` rendering: over-sensitive (extra fields only make
/// replay *less* eager, never wrong) and immune to field additions.
/// In-memory only — never persisted, so the rendering's stability across
/// builds is irrelevant.
fn cfg_fingerprint(cfg: &OrinConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// Winner map of the adaptive measure-and-choose dispatch, keyed exactly
/// like the legacy `GemmTuner`: `(strategy, m, n, k)`, shared engine-wide
/// so one measurement serves every plan of that shape.
pub(crate) type AdaptiveChoices = HashMap<(Strategy, usize, usize, usize), bool>;

/// The plan/execute engine: owns the plan cache, the packed-weight cache
/// and the adaptive winner map.
///
/// ```
/// use vitbit_plan::{Engine, GemmDesc, ExecConfig, Strategy};
/// use vitbit_sim::{Gpu, OrinConfig};
/// use vitbit_tensor::gen;
///
/// let mut gpu = Gpu::new(OrinConfig::test_small(), 64 << 20);
/// let mut engine = Engine::new();
/// let cfg = ExecConfig::int6();
/// let a = gen::uniform_i8(16, 32, -32, 31, 1);
/// let b = gen::uniform_i8(32, 320, -32, 31, 2);
/// let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &gpu, 16, 32, 320, Some(7));
/// let id = engine.prepare(desc).expect("prepare");
/// let first = engine.execute(&mut gpu, id, &a, &b).expect("execute");
/// let again = engine.execute(&mut gpu, id, &a, &b).expect("execute");
/// assert_eq!(first.c, again.c);
/// assert!(first.stats.plan_build_cycles > 0); // built + staged here
/// assert_eq!(again.stats.plan_build_cycles, 0); // hot path: no build work
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    plans: PlanCache,
    weights: PackedWeightCache,
    choices: AdaptiveChoices,
    stats: EngineStats,
    quarantined: HashSet<PlanId>,
    verifier: Option<PlanVerifier>,
    program_check: Option<ProgramCheck>,
    /// Memoized static-scheduler outcomes (see [`SchedMemo`]).
    sched: RefCell<SchedMemo>,
    /// Converged launch observations, by plan (see [`ReplayEntry`]).
    replays: HashMap<PlanId, ReplayEntry>,
    /// Async submission queue (see [`Engine::submit`]), drained in
    /// ticket order.
    pub(crate) pending: Vec<crate::serve::PendingRequest>,
    /// Next ticket id handed out by [`Engine::submit`].
    pub(crate) next_ticket: u64,
    /// Admission-control bound on the pending queue (`None` =
    /// unbounded); see [`Engine::set_queue_bound`].
    pub(crate) queue_bound: Option<usize>,
}

/// Scalar-MAC units to simulated cycles for the modeled ABFT check: the
/// machine retires one MAC per INT lane per subpartition per SM per cycle.
fn abft_denom(cfg: &OrinConfig) -> u64 {
    u64::from(cfg.int_lanes * cfg.subpartitions * cfg.num_sms).max(1)
}

impl Engine {
    /// Engine with the default plan-cache capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit plan-cache capacity.
    pub fn with_plan_capacity(capacity: usize) -> Self {
        Self {
            plans: PlanCache::with_capacity(capacity),
            ..Self::default()
        }
    }

    /// Installs a prepare-time static plan checker (see
    /// [`GemmDesc::verify`]); typically `vitbit_verify::engine_verifier()`.
    pub fn set_verifier(&mut self, verifier: PlanVerifier) {
        self.verifier = Some(verifier);
    }

    /// Builder-style [`Engine::set_verifier`].
    #[must_use]
    pub fn with_verifier(mut self, verifier: PlanVerifier) -> Self {
        self.verifier = Some(verifier);
        self
    }

    /// Installs the launch-time program checker gating the static
    /// scheduler (see [`GemmDesc::sched`]); typically
    /// `vitbit_verify::program_checker()`. Without one installed, every
    /// scheduler candidate is rejected — fail closed, never open.
    pub fn set_program_check(&mut self, check: ProgramCheck) {
        self.program_check = Some(check);
    }

    /// Builder-style [`Engine::set_program_check`].
    #[must_use]
    pub fn with_program_check(mut self, check: ProgramCheck) -> Self {
        self.program_check = Some(check);
        self
    }

    /// Bounds the async submission queue: once `pending_count()` reaches
    /// `bound`, [`Engine::submit`] refuses with
    /// [`EngineError::Overloaded`] instead of growing without limit.
    /// `None` (the default) removes the bound.
    pub fn set_queue_bound(&mut self, bound: Option<usize>) {
        self.queue_bound = bound;
    }

    /// The configured admission-control bound, when one is set.
    pub fn queue_bound(&self) -> Option<usize> {
        self.queue_bound
    }

    /// Whether the next [`Engine::submit`] would be refused by admission
    /// control.
    pub fn would_overload(&self) -> bool {
        self.queue_bound.is_some_and(|b| self.pending.len() >= b)
    }

    /// Resolves `desc` into a plan, building it on first sight: pack
    /// policy, Equation-1 split, padded geometry, role programs and the
    /// dispatch order. Idempotent and cheap on repeat — the LRU cache
    /// answers (a cached plan already passed verification when it was
    /// admitted).
    ///
    /// # Errors
    /// [`EngineError::Unverified`] when [`GemmDesc::verify`] is set and
    /// the installed [`PlanVerifier`] rejects the plan's programs — or
    /// no verifier is installed (fail closed).
    pub fn prepare(&mut self, desc: GemmDesc) -> Result<PlanId, EngineError> {
        if let Some(id) = self.plans.lookup(&desc) {
            self.stats.plan_cache_hits += 1;
            return Ok(id);
        }
        let proof = if desc.verify {
            match &self.verifier {
                Some(v) => {
                    self.stats.verifier_invocations += 1;
                    Some(
                        v.check(&desc)
                            .map_err(|violations| EngineError::Unverified { violations })?,
                    )
                }
                None => {
                    return Err(EngineError::Unverified {
                        violations: vec!["desc.verify set but no PlanVerifier installed \
                             (Engine::set_verifier)"
                            .into()],
                    });
                }
            }
        } else {
            None
        };
        self.stats.plan_cache_misses += 1;
        let (body, build) = self.build_body(&desc);
        self.stats.plan_build_units += build;
        Ok(self.plans.insert(GemmPlan {
            desc,
            body,
            pending_build: build,
            proof,
            last_use: 0,
        }))
    }

    fn build_body(&self, desc: &GemmDesc) -> (PlanBody, u64) {
        match desc.fused_mode() {
            Some(mode) => {
                let ratio = desc.ratio.unwrap_or_else(|| mode.default_ratio());
                let mut plan = plan_fused(desc.m, desc.k, desc.n, mode, ratio);
                if desc.sched {
                    self.sched_fused(desc, &mut plan);
                }
                let units = plan.plan_units;
                (
                    PlanBody::Fused {
                        plan: Arc::new(plan),
                        staged: None,
                    },
                    units,
                )
            }
            None => (PlanBody::Direct, DIRECT_POLICY_UNITS),
        }
    }

    /// Runs the static scheduler over every role program of a fused plan,
    /// in place. Each program is independently gated (see
    /// [`Engine::sched_pass`]); rejected candidates leave their slot
    /// untouched.
    pub(crate) fn sched_fused(&self, desc: &GemmDesc, plan: &mut FusedPlan) {
        if let FusedBody::Launch(geom) = &mut plan.body {
            for slot in &mut geom.programs {
                if let Some(scheduled) = self.sched_pass(desc, slot) {
                    *slot = scheduled;
                }
            }
        }
    }

    /// The static-scheduler pass over one emitted program: `Some` hands
    /// back an admitted rescheduled program, `None` keeps the original.
    /// Fail-closed at two layers — `vitbit-sched` self-validates the
    /// reorder, then the installed [`ProgramCheck`] re-proves lane safety
    /// and hazard freedom on the candidate; either failure (or no check
    /// installed) discards it. Memoized per distinct program, so the
    /// counters count programs, not launches.
    fn sched_pass(&self, desc: &GemmDesc, p: &Program) -> Option<Arc<Program>> {
        let key = fnv1a(format!("{}/{}/{}/{:?}", p.name, p.nregs, p.npreds, p.ops).as_bytes());
        let mut memo = self.sched.borrow_mut();
        if let Some(cached) = memo.cache.get(&key) {
            return cached.clone();
        }
        let admitted = vitbit_sched::schedule_program(p).and_then(|out| {
            let ok = self
                .program_check
                .as_ref()
                .is_some_and(|chk| chk.check(&out.program, desc).is_ok());
            if ok {
                memo.applied += 1;
                Some(Arc::new(out.program))
            } else {
                memo.rejected += 1;
                None
            }
        });
        memo.cache.insert(key, admitted.clone());
        admitted
    }

    /// Rebuilds a plan from its desc, dropping every cached artifact it
    /// could have poisoned: the staged operands, the plan state and the
    /// engine's packed-weight cache. Returns the build work spent.
    fn rebuild_plan(&mut self, id: PlanId) -> u64 {
        self.weights.clear();
        self.replays.remove(&id);
        let Some(desc) = self.plans.slots.get(&id).map(|p| p.desc) else {
            return 0;
        };
        let (body, build) = self.build_body(&desc);
        if let Some(plan) = self.plans.slots.get_mut(&id) {
            plan.body = body;
            plan.pending_build = 0;
        }
        build
    }

    /// Executes a prepared plan on concrete operands. The first execute
    /// of a weight-`B` plan stages (packs) the weight through the engine's
    /// [`PackedWeightCache`]; every later execute reuses the staged
    /// artifacts — zero re-packing, zero policy recomputation. The
    /// returned stats carry the plan counters: `plan_build_cycles` is the
    /// build work attributed to *this* call (zero on the hot path).
    ///
    /// Faults never surface as errors. A failed launch — or, with
    /// [`GemmDesc::abft`] on, an ABFT checksum mismatch — engages the
    /// recovery ladder:
    ///
    /// 1. re-execute the plan as-is (transient fault);
    /// 2. drop the staged artifacts and packed-weight cache, rebuild the
    ///    plan, and re-execute (poisoned cache);
    /// 3. fall back to the plain Tensor-core driver;
    /// 4. quarantine the plan and compute on the host reference GEMM —
    ///    later executes of a quarantined plan go straight to the host
    ///    until [`Engine::invalidate`] clears it.
    ///
    /// # Errors
    /// [`EngineError::UnknownPlan`] when `id` was never prepared, was
    /// evicted, or was invalidated; [`EngineError::ShapeMismatch`] when
    /// operand shapes disagree with the plan's desc.
    pub fn execute(
        &mut self,
        gpu: &mut Gpu,
        id: PlanId,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
    ) -> Result<GemmOut, EngineError> {
        Ok(self.serve_one(gpu, id, a, b, false, None)?.out)
    }

    /// Serves a queue of requests against one prepared plan. The batched
    /// path amortizes per-request work: the plan is resolved once, the
    /// weight stays staged, and once the machine's timing state reaches
    /// its launch fixed point the remaining requests are served by
    /// steady-state replay — host-exact outputs stamped with the
    /// converged launch statistics, no simulator occupancy. Outputs and
    /// per-request stats are **bit-identical** to a sequential
    /// [`Engine::execute`] loop over the same requests.
    ///
    /// The recovery ladder runs per request: a faulting request walks its
    /// rungs (and may quarantine the plan) without poisoning its batch
    /// neighbors — later requests of a quarantined plan are served by the
    /// host reference, exactly as sequential executes would be.
    ///
    /// # Errors
    /// Same contract as [`Engine::execute`], checked per request; on the
    /// first refused request the earlier outcomes are discarded with the
    /// error (the engine state they mutated remains, as with sequential
    /// calls).
    pub fn execute_batch(
        &mut self,
        gpu: &mut Gpu,
        id: PlanId,
        requests: &[(&Matrix<i8>, &Matrix<i8>)],
    ) -> Result<BatchResult, EngineError> {
        self.stats.batches += 1;
        let mut outcomes = Vec::with_capacity(requests.len());
        for &(a, b) in requests {
            self.stats.batch_requests += 1;
            outcomes.push(self.serve_one(gpu, id, a, b, true, None)?);
        }
        Ok(BatchResult { outcomes })
    }

    /// The shared serving path behind [`Engine::execute`] (replay off:
    /// every request launches, preserving the historical contract) and
    /// [`Engine::execute_batch`] (replay on). Both paths *record* replay
    /// entries, so a sequential warm-up arms later batches.
    ///
    /// `prestaged` is an activation-`B` staging computed ahead of time
    /// (the async drain's worker pool) — a pure function of
    /// `(plan, b)`, so consuming it is bit-identical to staging inline.
    pub(crate) fn serve_one(
        &mut self,
        gpu: &mut Gpu,
        id: PlanId,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        allow_replay: bool,
        mut prestaged: Option<Arc<FusedB>>,
    ) -> Result<RequestOutcome, EngineError> {
        self.plans.touch(id);
        let Some(plan) = self.plans.slots.get(&id) else {
            return Err(EngineError::UnknownPlan(id));
        };
        let desc = plan.desc;
        if (a.rows(), a.cols()) != (desc.m, desc.k) || (b.rows(), b.cols()) != (desc.k, desc.n) {
            return Err(EngineError::ShapeMismatch {
                expected: (desc.m, desc.k, desc.n),
                a: (a.rows(), a.cols()),
                b: (b.rows(), b.cols()),
            });
        }
        self.stats.executes += 1;
        if self.quarantined.contains(&id) {
            return Ok(RequestOutcome {
                out: self.host_reference(a, b),
                served: ServePath::Host,
                faults: 0,
                retries: 0,
                ladder: Vec::new(),
            });
        }

        let denom = abft_denom(gpu.config());

        if allow_replay {
            if let Some(out) = self.try_replay(gpu, id, a, b, denom) {
                return Ok(RequestOutcome {
                    out,
                    served: ServePath::Replayed,
                    faults: 0,
                    retries: 0,
                    ladder: Vec::new(),
                });
            }
        }

        // Replay-recording eligibility, judged *before* the launch: the
        // plan must already be in its steady state (no pending build, the
        // weight staged, the adaptive choice decided) and the machine
        // deterministic (no fault injection) — only then can one launch's
        // statistics stand for every later launch from the same state.
        let fp_before = if self.replay_recordable(gpu, id, &desc) {
            Some(gpu.timing_fingerprint())
        } else {
            None
        };

        let mut total_build = 0u64;
        let mut abft_cycles = 0u64;
        let mut detected = 0u64;
        let mut req_retries = 0u64;
        let mut ladder: Vec<LadderEvent> = Vec::new();

        // Rungs 0..2 of the ladder: the plan itself — as prepared, retried
        // once, then rebuilt from scratch. With faults off, rung 0 is the
        // whole function: it issues exactly the pre-ladder launch sequence.
        for rung in 0..3u32 {
            let rung_name = match rung {
                0 => LadderRung::Initial,
                1 => LadderRung::Retry,
                _ => LadderRung::Rebuild,
            };
            match rung {
                1 => {
                    self.stats.retries += 1;
                    req_retries += 1;
                }
                2 => {
                    self.stats.retries += 1;
                    req_retries += 1;
                    total_build += self.rebuild_plan(id);
                }
                _ => {}
            }
            let (res, build) = self.attempt_plan(gpu, id, a, b, &mut prestaged);
            total_build += build;
            match res {
                Ok(out) => {
                    let ok = if desc.abft {
                        let bsum = self.staged_bsum(id);
                        let check =
                            abft::verify_gemm(a, b, &out.c, bsum.as_deref().map(Vec::as_slice));
                        abft_cycles += check.units.div_ceil(denom);
                        check.ok()
                    } else {
                        true
                    };
                    if ok {
                        if let Some(fp_before) = fp_before {
                            if rung == 0 && detected == 0 && total_build == 0 {
                                let fp_after = gpu.timing_fingerprint();
                                if fp_before == fp_after {
                                    // L2 fixed point observed: this launch's
                                    // stats are the plan's steady state.
                                    self.replays.insert(
                                        id,
                                        ReplayEntry {
                                            cfg_fp: cfg_fingerprint(gpu.config()),
                                            fp: fp_after,
                                            stats: out.stats.clone(),
                                        },
                                    );
                                }
                            }
                        }
                        return Ok(RequestOutcome {
                            out: self.finish(out, total_build, abft_cycles, detected),
                            served: ServePath::Launched,
                            faults: detected,
                            retries: req_retries,
                            ladder,
                        });
                    }
                    detected += 1;
                    self.stats.faults_detected += 1;
                    ladder.push(LadderEvent {
                        rung: rung_name,
                        cause: FaultCause::AbftMismatch,
                    });
                }
                Err(e) => {
                    detected += 1;
                    self.stats.faults_detected += 1;
                    ladder.push(LadderEvent {
                        rung: rung_name,
                        cause: FaultCause::Launch(e),
                    });
                }
            }
        }

        // Rung 3: strategy fallback — the plain Tensor-core driver shares
        // nothing with the failing plan except the GPU itself.
        self.stats.fallbacks += 1;
        match run_tc(gpu, a, b) {
            Ok(out) => {
                let ok = if desc.abft {
                    let check = abft::verify_gemm(a, b, &out.c, None);
                    abft_cycles += check.units.div_ceil(denom);
                    check.ok()
                } else {
                    true
                };
                if ok {
                    return Ok(RequestOutcome {
                        out: self.finish(out, total_build, abft_cycles, detected),
                        served: ServePath::Launched,
                        faults: detected,
                        retries: req_retries,
                        ladder,
                    });
                }
                detected += 1;
                self.stats.faults_detected += 1;
                ladder.push(LadderEvent {
                    rung: LadderRung::TcFallback,
                    cause: FaultCause::AbftMismatch,
                });
            }
            Err(e) => {
                detected += 1;
                self.stats.faults_detected += 1;
                ladder.push(LadderEvent {
                    rung: LadderRung::TcFallback,
                    cause: FaultCause::Launch(e),
                });
            }
        }

        // Final rung: the simulated machine is not producing trustworthy
        // results for this plan. Quarantine it and answer from the host.
        self.quarantined.insert(id);
        self.replays.remove(&id);
        self.stats.quarantined_plans += 1;
        let out = self.host_reference(a, b);
        Ok(RequestOutcome {
            out: self.finish(out, total_build, abft_cycles, detected),
            served: ServePath::Host,
            faults: detected,
            retries: req_retries,
            ladder,
        })
    }

    /// Whether a successful rung-0 launch of `id`, from the machine's
    /// current state, would be a valid steady-state observation.
    fn replay_recordable(&self, gpu: &Gpu, id: PlanId, desc: &GemmDesc) -> bool {
        if gpu.config().fault.enabled {
            return false;
        }
        let Some(plan) = self.plans.slots.get(&id) else {
            return false;
        };
        if plan.pending_build != 0 {
            return false;
        }
        if desc.weight.is_some() && plan.fused().is_some() && !plan.weight_staged() {
            // The first fused launch of a weight plan stages (packs) the
            // stationary operand — build work that is not steady state.
            // Direct plans stage nothing, so the gate does not apply.
            return false;
        }
        if desc.adaptive
            && plan.fused().is_some()
            && !self
                .choices
                .contains_key(&(desc.strategy, desc.m, desc.n, desc.k))
        {
            // An undecided adaptive fused plan measures (two launches) —
            // not the steady-state launch sequence. Direct plans run one
            // fixed kernel; adaptivity never alters their sequence.
            return false;
        }
        true
    }

    /// Serves one request from the plan's converged observation, when the
    /// machine is provably at the recorded fixed point. Returns `None`
    /// (caller falls back to a live launch) on any mismatch — replay
    /// never guesses.
    fn try_replay(
        &mut self,
        gpu: &Gpu,
        id: PlanId,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        denom: u64,
    ) -> Option<GemmOut> {
        if gpu.config().fault.enabled {
            return None;
        }
        let entry = self.replays.get(&id)?;
        if entry.cfg_fp != cfg_fingerprint(gpu.config()) || gpu.timing_fingerprint() != entry.fp {
            return None;
        }
        let stats = entry.stats.clone();
        let plan = self.plans.slots.get(&id)?;
        let desc = plan.desc;
        if plan.pending_build != 0
            || (desc.weight.is_some() && plan.fused().is_some() && !plan.weight_staged())
            || (desc.adaptive
                && plan.fused().is_some()
                && !self
                    .choices
                    .contains_key(&(desc.strategy, desc.m, desc.n, desc.k)))
        {
            return None;
        }
        // Timing is value-independent; outputs are not. The launch the
        // stats stand for is bit-exact against the host kernel (the
        // simulator's golden contract), so the output comes from there.
        let c = gemm_i8_i32_fast(a, b);
        let mut abft_cycles = 0u64;
        if desc.abft {
            let bsum = self.staged_bsum(id);
            let check = abft::verify_gemm(a, b, &c, bsum.as_deref().map(Vec::as_slice));
            abft_cycles = check.units.div_ceil(denom);
            if !check.ok() {
                // A host-exact result failing its own checksum means the
                // staged bsum is stale — fall back to a live launch.
                return None;
            }
        }
        self.stats.replayed_executes += 1;
        let out = GemmOut { c, stats };
        Some(self.finish(out, 0, abft_cycles, 0))
    }

    /// One attempt at running the plan as prepared. Returns the driver
    /// result plus the build units accrued (staging can succeed even when
    /// the launch then faults, and that work must not be lost).
    fn attempt_plan(
        &mut self,
        gpu: &mut Gpu,
        id: PlanId,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        prestaged: &mut Option<Arc<FusedB>>,
    ) -> (Result<GemmOut, GemmError>, u64) {
        let plan = self
            .plans
            .slots
            .get_mut(&id)
            .expect("plan vetted by execute");
        let desc = plan.desc;
        let mut build = std::mem::take(&mut plan.pending_build);
        if matches!(plan.body, PlanBody::Direct) {
            // Direct drivers emit their program per launch; the scheduler
            // pass (memoized, fail-closed) threads through the `*_with_pass`
            // driver variants.
            let passf = |p: &Program| self.sched_pass(&desc, p);
            let pass: Option<ProgPass<'_>> = if desc.sched { Some(&passf) } else { None };
            let res = match desc.strategy {
                Strategy::Tc => run_tc_with_pass(gpu, a, b, pass),
                Strategy::Ic => run_ic_with_pass(gpu, a, b, pass),
                Strategy::Fc => run_fc_with_pass(gpu, a, b, pass),
                Strategy::IcFc => run_ic_fc_with_pass(gpu, a, b, pass),
                _ => unreachable!("fused strategy with direct plan body"),
            };
            return (res, build);
        }
        let plan = self
            .plans
            .slots
            .get_mut(&id)
            .expect("plan vetted by execute");
        let res = match &mut plan.body {
            PlanBody::Direct => unreachable!("direct body handled above"),
            PlanBody::Fused {
                plan: fplan,
                staged,
            } => {
                // Stage B: weights once (through the packed-weight cache),
                // activations per request (their values change each call —
                // that staging is execute work, not plan-build work).
                let weights = &mut self.weights;
                let choices = &mut self.choices;
                let mut run_fused_now = |gpu: &mut Gpu,
                                         staged: &mut Option<Arc<FusedB>>,
                                         build: &mut u64|
                 -> Result<GemmOut, GemmError> {
                    let staged_b: Arc<FusedB> = match (desc.weight, staged.as_ref()) {
                        (Some(_), Some(s)) => Arc::clone(s),
                        (Some(wid), None) => {
                            let mut fb = prepare_fused_b(fplan, b, Some((weights, wid)));
                            if desc.abft {
                                // The weight-side checksum vector rides the
                                // staged artifacts so steady-state verifies
                                // skip its O(KN) cost.
                                fb.prep_units += (desc.k * desc.n) as u64;
                                fb.bsum = Some(Arc::new(weight_row_sums(b)));
                            }
                            let s = Arc::new(fb);
                            *build += s.prep_units;
                            *staged = Some(Arc::clone(&s));
                            s
                        }
                        // Activation B: consume the pre-staged operands
                        // when the async drain prepared them (identical
                        // content — staging is pure in (plan, b)).
                        (None, _) => match prestaged.take() {
                            Some(s) => s,
                            None => Arc::new(prepare_fused_b(fplan, b, None)),
                        },
                    };
                    execute_fused(gpu, fplan, a, b, &staged_b)
                };
                if desc.adaptive {
                    // Measure-and-choose, keyed exactly like the legacy
                    // GemmTuner so launch sequences (and thus L2 state)
                    // are reproduced verbatim.
                    let key = (desc.strategy, desc.m, desc.n, desc.k);
                    match choices.get(&key).copied() {
                        Some(true) => run_fused_now(gpu, staged, &mut build),
                        Some(false) => run_tc(gpu, a, b),
                        None => {
                            let fused = run_fused_now(gpu, staged, &mut build);
                            let tc = run_tc(gpu, a, b);
                            match (fused, tc) {
                                (Ok(f), Ok(t)) => {
                                    let use_fused = f.stats.cycles <= t.stats.cycles;
                                    choices.insert(key, use_fused);
                                    Ok(if use_fused { f } else { t })
                                }
                                // A measurement taken under fault is not a
                                // choice: leave the key unset for retry.
                                (Err(e), _) | (_, Err(e)) => Err(e),
                            }
                        }
                    }
                } else {
                    run_fused_now(gpu, staged, &mut build)
                }
            }
        };
        (res, build)
    }

    /// The cached weight-side checksum vector of a staged weight plan.
    fn staged_bsum(&self, id: PlanId) -> Option<Arc<Vec<i64>>> {
        match &self.plans.slots.get(&id)?.body {
            PlanBody::Fused {
                staged: Some(s), ..
            } => s.bsum.clone(),
            _ => None,
        }
    }

    /// Stamps the engine-side counters of one served execute onto its
    /// output stats.
    fn finish(
        &mut self,
        mut out: GemmOut,
        total_build: u64,
        abft_cycles: u64,
        detected: u64,
    ) -> GemmOut {
        self.stats.plan_build_units += total_build;
        out.stats.plan_build_cycles = total_build;
        if total_build > 0 {
            out.stats.plan_cache_misses = 1;
        } else {
            out.stats.plan_cache_hits = 1;
        }
        out.stats.abft_check_cycles += abft_cycles;
        out.stats.faults_detected += detected;
        out
    }

    /// Last rung of the ladder: the host reference GEMM. No launch, no
    /// cycles — a correct answer from outside the faulting machine. The
    /// pool's graceful-degradation path (every device evicted) answers
    /// from the same function.
    pub(crate) fn host_reference(&self, a: &Matrix<i8>, b: &Matrix<i8>) -> GemmOut {
        let stats = KernelStats {
            name: "gemm_host_ref".into(),
            ..KernelStats::default()
        };
        GemmOut {
            c: gemm_i8_i32(a, b),
            stats,
        }
    }

    /// Drops a plan — cached state, quarantine mark and desc mapping — so
    /// the next [`Engine::prepare`] of its desc rebuilds from scratch.
    /// Returns whether a cached plan was actually removed.
    pub fn invalidate(&mut self, id: PlanId) -> bool {
        self.quarantined.remove(&id);
        self.replays.remove(&id);
        let Some(plan) = self.plans.slots.remove(&id) else {
            return false;
        };
        self.plans.by_desc.remove(&plan.desc);
        true
    }

    /// Plans currently quarantined (served by the host reference).
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Prepare + execute in one call (the shape the legacy one-shot
    /// entry points use).
    ///
    /// # Errors
    /// Same contract as [`Engine::prepare`] and [`Engine::execute`];
    /// `UnknownPlan` cannot occur here because the plan is prepared in
    /// the same call.
    pub fn run(
        &mut self,
        gpu: &mut Gpu,
        desc: GemmDesc,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
    ) -> Result<GemmOut, EngineError> {
        let id = self.prepare(desc)?;
        self.execute(gpu, id, a, b)
    }

    /// Cumulative engine counters. The scheduler counters are overlaid
    /// from the memo here (they count distinct programs, not launches).
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        let memo = self.sched.borrow();
        s.sched_applied = memo.applied;
        s.sched_rejected = memo.rejected;
        s
    }

    /// Cached plans.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Read access to a cached plan.
    pub fn plan(&self, id: PlanId) -> Option<&GemmPlan> {
        self.plans.slots.get(&id)
    }

    /// Whether a plan for `desc` is resident, without perturbing LRU
    /// recency (the pool's affinity accounting must not age plans).
    pub fn has_plan(&self, desc: &GemmDesc) -> bool {
        self.plans.by_desc.contains_key(desc)
    }

    /// Iterates the resident plans (persistence export).
    pub(crate) fn plans_iter(&self) -> impl Iterator<Item = &GemmPlan> {
        self.plans.slots.values()
    }

    /// Admits an already-materialized plan (persistence import). The
    /// caller has validated it; it enters with the build work it claims.
    pub(crate) fn admit_plan(&mut self, plan: GemmPlan) -> PlanId {
        self.plans.insert(plan)
    }

    /// Mutable engine counters (pool affinity stamping, import counting).
    pub(crate) fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }

    /// Takes the whole pending queue (pool ticket failover: the evicted
    /// shard's queued requests re-home to healthy shards).
    pub(crate) fn take_pending(&mut self) -> Vec<crate::serve::PendingRequest> {
        std::mem::take(&mut self.pending)
    }

    /// The engine's packed-weight cache.
    pub fn weights(&self) -> &PackedWeightCache {
        &self.weights
    }

    /// Mutable access to the packed-weight cache (the legacy shims swap a
    /// caller-owned cache in and out here).
    pub fn weights_mut(&mut self) -> &mut PackedWeightCache {
        &mut self.weights
    }

    pub(crate) fn choices_mut(&mut self) -> &mut AdaptiveChoices {
        &mut self.choices
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::strategy::ExecConfig;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Matrix<i8>, Matrix<i8>) {
        (
            gen::uniform_i8(m, k, -32, 31, seed),
            gen::uniform_i8(k, n, -32, 31, seed + 1),
        )
    }

    #[test]
    fn prepare_hits_cache_on_repeat() {
        let g = gpu();
        let mut e = Engine::new();
        let cfg = ExecConfig::int6();
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, Some(1));
        let id1 = e.prepare(desc).expect("prepare");
        let id2 = e.prepare(desc).expect("prepare");
        assert_eq!(id1, id2);
        assert_eq!(e.stats().plan_cache_hits, 1);
        assert_eq!(e.stats().plan_cache_misses, 1);
        assert_eq!(e.plan_count(), 1);
    }

    #[test]
    fn hot_path_does_no_build_work() {
        let mut g = gpu();
        let mut e = Engine::new();
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let (a, b) = mats(16, 32, 320, 3);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, Some(9));
        let id = e.prepare(desc).expect("prepare");
        let cold = e.execute(&mut g, id, &a, &b).expect("execute");
        assert!(cold.stats.plan_build_cycles > 0);
        assert_eq!(cold.stats.plan_cache_misses, 1);
        assert!(e.plan(id).expect("plan").weight_staged());
        let weight_misses = e.weights().misses();
        let hot = e.execute(&mut g, id, &a, &b).expect("execute");
        assert_eq!(hot.stats.plan_build_cycles, 0, "no build work on reuse");
        assert_eq!(hot.stats.plan_cache_hits, 1);
        assert_eq!(e.weights().misses(), weight_misses, "no re-packing");
        assert_eq!(hot.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn every_strategy_computes_the_same_gemm_via_engine() {
        let mut g = gpu();
        let mut e = Engine::new();
        let cfg = ExecConfig::int6();
        let (a, b) = mats(20, 32, 320, 5);
        let want = gemm_i8_i32(&a, &b);
        for s in Strategy::ALL {
            let desc = GemmDesc::from_exec(s, &cfg, &g, 20, 32, 320, None);
            let out = e.run(&mut g, desc, &a, &b).expect("run");
            assert_eq!(out.c, want, "strategy {}", s.name());
        }
    }

    #[test]
    fn lru_evicts_oldest_plan() {
        let g = gpu();
        let mut e = Engine::with_plan_capacity(2);
        let cfg = ExecConfig::int6();
        let d1 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 128, None);
        let d2 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 256, None);
        let d3 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 512, None);
        let id1 = e.prepare(d1).expect("prepare");
        let _id2 = e.prepare(d2).expect("prepare");
        let _id1_again = e.prepare(d1).expect("prepare"); // refresh d1
        let _id3 = e.prepare(d3).expect("prepare"); // evicts d2, not d1
        assert_eq!(e.plan_count(), 2);
        assert_eq!(
            e.prepare(d1).expect("prepare"),
            id1,
            "d1 survived the eviction"
        );
        assert_eq!(e.stats().plan_cache_misses, 4 - 1); // d1, d2, d3 built once
    }

    #[test]
    fn activation_plans_restage_per_call_but_share_the_plan() {
        let mut g = gpu();
        let mut e = Engine::new();
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let (a, b) = mats(16, 32, 320, 11);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, None);
        let id = e.prepare(desc).expect("prepare");
        let first = e.execute(&mut g, id, &a, &b).expect("execute");
        assert!(!e.plan(id).expect("plan").weight_staged());
        // Different activation values through the same plan.
        let (_, b2) = mats(16, 32, 320, 13);
        let second = e.execute(&mut g, id, &a, &b2).expect("execute");
        assert_eq!(second.c, gemm_i8_i32(&a, &b2));
        assert_eq!(first.stats.plan_cache_misses, 1);
        assert_eq!(second.stats.plan_cache_hits, 1);
    }

    #[test]
    fn evicted_plan_is_a_typed_error() {
        let mut g = gpu();
        let mut e = Engine::with_plan_capacity(1);
        let cfg = ExecConfig::int6();
        let d1 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 128, None);
        let d2 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 256, None);
        let id1 = e.prepare(d1).expect("prepare");
        let _ = e.prepare(d2).expect("prepare"); // evicts d1
        let (a, b) = mats(16, 32, 128, 17);
        let err = e.execute(&mut g, id1, &a, &b).unwrap_err();
        assert_eq!(err, EngineError::UnknownPlan(id1));
        assert!(
            err.to_string().contains("unknown or evicted PlanId"),
            "diagnostic must keep naming the cause: {err}"
        );
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let mut g = gpu();
        let mut e = Engine::new();
        let cfg = ExecConfig::int6();
        let desc = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 128, None);
        let id = e.prepare(desc).expect("prepare");
        let (a, b) = mats(16, 32, 256, 19); // wrong N
        let err = e.execute(&mut g, id, &a, &b).unwrap_err();
        assert!(matches!(err, EngineError::ShapeMismatch { .. }), "{err}");
        assert_eq!(e.stats().executes, 0, "a refused request is not served");
    }

    #[test]
    fn invalidate_forces_a_full_rebuild() {
        let mut g = gpu();
        let mut e = Engine::new();
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let (a, b) = mats(16, 32, 320, 21);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, Some(4));
        let id = e.prepare(desc).expect("prepare");
        let first = e.execute(&mut g, id, &a, &b).expect("execute");
        assert!(e.invalidate(id));
        assert!(!e.invalidate(id), "second invalidate finds nothing");
        assert_eq!(e.plan_count(), 0);
        assert_eq!(
            e.execute(&mut g, id, &a, &b).unwrap_err(),
            EngineError::UnknownPlan(id)
        );
        // Re-prepare builds a fresh plan under the same desc.
        let id2 = e.prepare(desc).expect("prepare");
        let again = e.execute(&mut g, id2, &a, &b).expect("execute");
        assert!(again.stats.plan_build_cycles > 0, "rebuilt from scratch");
        assert_eq!(again.c, first.c);
        assert_eq!(e.stats().plan_cache_misses, 2);
    }

    #[test]
    fn abft_on_verifies_and_matches_abft_off() {
        let (a, b) = mats(24, 32, 320, 23);
        let run = |abft: bool| {
            let mut g = gpu();
            let mut e = Engine::new();
            let mut cfg = ExecConfig::int6();
            cfg.adaptive = false;
            cfg.abft = abft;
            let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 24, 32, 320, Some(8));
            let id = e.prepare(desc).expect("prepare");
            let cold = e.execute(&mut g, id, &a, &b).expect("execute");
            let hot = e.execute(&mut g, id, &a, &b).expect("execute");
            (cold, hot, e.stats())
        };
        let (plain_cold, plain_hot, plain_stats) = run(false);
        let (abft_cold, abft_hot, abft_stats) = run(true);
        assert_eq!(plain_cold.c, abft_cold.c);
        assert_eq!(plain_hot.c, abft_hot.c);
        assert_eq!(plain_cold.stats.abft_check_cycles, 0);
        assert!(abft_cold.stats.abft_check_cycles > 0, "check is modeled");
        assert!(abft_hot.stats.abft_check_cycles > 0);
        // Same simulated launches either way: the check is host-side.
        assert_eq!(plain_hot.stats.cycles, abft_hot.stats.cycles);
        assert_eq!(plain_stats.faults_detected, 0);
        assert_eq!(abft_stats.faults_detected, 0, "fault-free run");
        // The staged bsum vector rides the plan's artifacts.
        assert!(abft_cold.stats.plan_build_cycles > plain_cold.stats.plan_build_cycles);
    }

    #[test]
    fn ladder_quarantines_a_plan_on_a_dead_machine() {
        // Hang virtually every launch: the whole ladder fails and the
        // engine must still answer correctly, from the host.
        let mut cfg = OrinConfig::test_small();
        cfg.fast_forward = true;
        cfg.fault = vitbit_sim::FaultConfig {
            enabled: true,
            seed: 7,
            reg_flip_rate: 0.0,
            dram_flip_rate: 0.0,
            hang_rate: 0.9,
        };
        let mut g = Gpu::new(cfg, 64 << 20);
        let mut e = Engine::new();
        let mut ec = ExecConfig::int6();
        ec.adaptive = false;
        let (a, b) = mats(16, 32, 320, 25);
        let want = gemm_i8_i32(&a, &b);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &ec, &g, 16, 32, 320, Some(3));
        let id = e.prepare(desc).expect("prepare");
        let out = e
            .execute(&mut g, id, &a, &b)
            .expect("ladder absorbs faults");
        assert_eq!(out.c, want, "host reference answers correctly");
        assert_eq!(out.stats.name, "gemm_host_ref");
        let s = e.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.quarantined_plans, 1);
        assert!(s.faults_detected >= 4, "every rung failed: {s:?}");
        assert_eq!(e.quarantined_count(), 1);
        // A quarantined plan skips the machine entirely.
        let again = e.execute(&mut g, id, &a, &b).expect("quarantined serve");
        assert_eq!(again.c, want);
        assert_eq!(again.stats.name, "gemm_host_ref");
        assert_eq!(e.stats().retries, 2, "no new ladder walk");
        // Invalidate clears the quarantine with the plan.
        assert!(e.invalidate(id));
        assert_eq!(e.quarantined_count(), 0);
    }

    #[test]
    fn abft_recovers_correct_results_under_register_faults() {
        let (a, b) = mats(16, 32, 320, 27);
        let want = gemm_i8_i32(&a, &b);
        for seed in 0..6u64 {
            let mut cfg = OrinConfig::test_small();
            cfg.fault = vitbit_sim::FaultConfig {
                enabled: true,
                seed: 0xF00D + seed,
                reg_flip_rate: 2e-4,
                dram_flip_rate: 0.0,
                hang_rate: 0.0,
            };
            let mut g = Gpu::new(cfg, 64 << 20);
            let mut e = Engine::new();
            let mut ec = ExecConfig::int6();
            ec.adaptive = false;
            ec.abft = true;
            let desc = GemmDesc::from_exec(Strategy::VitBit, &ec, &g, 16, 32, 320, Some(5));
            let id = e.prepare(desc).expect("prepare");
            for _ in 0..4 {
                let out = e.execute(&mut g, id, &a, &b).expect("execute");
                assert_eq!(out.c, want, "seed {seed}: checked result is correct");
            }
        }
    }

    #[test]
    fn verify_without_verifier_fails_closed() {
        let g = gpu();
        let mut e = Engine::new();
        let mut cfg = ExecConfig::int6();
        cfg.verify_plans = true;
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, None);
        assert!(desc.verify);
        match e.prepare(desc) {
            Err(EngineError::Unverified { violations }) => {
                assert_eq!(violations.len(), 1);
                assert!(violations[0].contains("no PlanVerifier installed"));
            }
            other => panic!("expected Unverified, got {other:?}"),
        }
        assert_eq!(e.plan_count(), 0, "rejected descs must not be cached");
    }

    #[test]
    fn rejecting_verifier_blocks_prepare() {
        let g = gpu();
        let mut e = Engine::new().with_verifier(PlanVerifier::new(|d: &GemmDesc| {
            Err(vec![format!("lane overflow at K={}", d.k)])
        }));
        let mut cfg = ExecConfig::int6();
        cfg.verify_plans = true;
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, None);
        match e.prepare(desc) {
            Err(EngineError::Unverified { violations }) => {
                assert_eq!(violations, vec!["lane overflow at K=32".to_string()]);
            }
            other => panic!("expected Unverified, got {other:?}"),
        }
        assert_eq!(e.plan_count(), 0);
    }

    #[test]
    fn accepting_verifier_admits_and_caches_the_plan() {
        let mut g = gpu();
        let mut e =
            Engine::new().with_verifier(PlanVerifier::new(|_: &GemmDesc| Ok(PlanProof::default())));
        let mut cfg = ExecConfig::int6();
        cfg.verify_plans = true;
        let (a, b) = mats(16, 32, 320, 31);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, None);
        let id = e.prepare(desc).expect("verified prepare");
        let out = e.execute(&mut g, id, &a, &b).expect("execute");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        // The cache hit bypasses re-verification: even after swapping in a
        // rejecting verifier, the already-admitted desc resolves to its plan.
        e.set_verifier(PlanVerifier::new(|_: &GemmDesc| {
            Err(vec!["reject everything".into()])
        }));
        assert_eq!(e.prepare(desc).expect("cache hit skips verifier"), id);
        let fresh = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 640, None);
        assert!(
            matches!(e.prepare(fresh), Err(EngineError::Unverified { .. })),
            "a new desc goes through the rejecting verifier"
        );
    }

    #[test]
    fn batch_is_bit_identical_to_sequential_and_replays_steady_state() {
        let (a, b) = mats(16, 32, 320, 33);
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let n = 6usize;
        // Sequential loop on one machine…
        let mut g1 = gpu();
        let mut e1 = Engine::new();
        let d1 = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g1, 16, 32, 320, Some(2));
        let id1 = e1.prepare(d1).expect("prepare");
        let seq: Vec<_> = (0..n)
            .map(|_| e1.execute(&mut g1, id1, &a, &b).expect("execute"))
            .collect();
        // …vs one batch on an identical machine.
        let mut g2 = gpu();
        let mut e2 = Engine::new();
        let d2 = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g2, 16, 32, 320, Some(2));
        let id2 = e2.prepare(d2).expect("prepare");
        let reqs: Vec<_> = (0..n).map(|_| (&a, &b)).collect();
        let batch = e2.execute_batch(&mut g2, id2, &reqs).expect("batch");
        assert_eq!(batch.outcomes.len(), n);
        for (i, (s, o)) in seq.iter().zip(&batch.outcomes).enumerate() {
            assert_eq!(o.out.c, s.c, "request {i}: outputs diverge");
            assert_eq!(o.out.stats, s.stats, "request {i}: stats diverge");
        }
        // Cold build + a few convergence launches; the tail replays.
        assert!(
            batch.replayed() >= 1,
            "steady state must replay: {} of {n} replayed",
            batch.replayed()
        );
        assert_eq!(
            batch.outcomes[n - 1].served,
            ServePath::Replayed,
            "the last request rides the fixed point"
        );
        let s = e2.stats();
        assert_eq!(s.replayed_executes as usize, batch.replayed());
        assert_eq!(s.batches, 1);
        assert_eq!(s.batch_requests, n as u64);
        // The machines end in identical timing state: a later sequential
        // execute on each still agrees bit-for-bit.
        let t1 = e1.execute(&mut g1, id1, &a, &b).expect("execute");
        let t2 = e2.execute(&mut g2, id2, &a, &b).expect("execute");
        assert_eq!(t1.c, t2.c);
        assert_eq!(t1.stats, t2.stats);
    }

    #[test]
    fn replay_is_gated_off_under_fault_injection() {
        let mut cfg = OrinConfig::test_small();
        cfg.fault = vitbit_sim::FaultConfig {
            enabled: true,
            seed: 3,
            reg_flip_rate: 0.0,
            dram_flip_rate: 0.0,
            hang_rate: 0.0,
        };
        let mut g = Gpu::new(cfg, 64 << 20);
        let mut e = Engine::new();
        let mut ec = ExecConfig::int6();
        ec.adaptive = false;
        let (a, b) = mats(16, 32, 320, 35);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &ec, &g, 16, 32, 320, Some(6));
        let id = e.prepare(desc).expect("prepare");
        let reqs: Vec<_> = (0..5).map(|_| (&a, &b)).collect();
        let batch = e.execute_batch(&mut g, id, &reqs).expect("batch");
        assert_eq!(
            batch.replayed(),
            0,
            "a fault-injecting machine is never replayed"
        );
        assert_eq!(e.stats().replayed_executes, 0);
    }

    #[test]
    fn rebuild_and_invalidate_drop_replay_entries() {
        let mut g = gpu();
        let mut e = Engine::new();
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let (a, b) = mats(16, 32, 320, 37);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, Some(12));
        let id = e.prepare(desc).expect("prepare");
        let reqs: Vec<_> = (0..5).map(|_| (&a, &b)).collect();
        let warm = e.execute_batch(&mut g, id, &reqs).expect("batch");
        assert!(warm.replayed() > 0, "entry recorded");
        assert!(e.invalidate(id));
        let id2 = e.prepare(desc).expect("prepare");
        // A fresh plan starts cold: its first request must launch.
        let again = e.execute_batch(&mut g, id2, &reqs).expect("batch");
        assert_eq!(again.outcomes[0].served, ServePath::Launched);
        assert_eq!(again.outcomes[0].out.c, gemm_i8_i32(&a, &b));
    }
}
