//! The plan/execute engine: [`Engine::prepare`] resolves a [`GemmDesc`]
//! into a cached [`GemmPlan`]; [`Engine::execute`] runs it per request.

use crate::strategy::Strategy;
use std::collections::HashMap;
use std::sync::Arc;
use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::CoreRatio;
use vitbit_kernels::gemm::{
    execute_fused, plan_fused, prepare_fused_b, run_fc, run_ic, run_ic_fc, run_tc, FusedB,
    FusedMode, FusedPlan, GemmOut, PackedWeightCache,
};
use vitbit_sim::{Gpu, OrinConfig, SchedPolicy, SimMode};
use vitbit_tensor::Matrix;

/// The simulator knobs that shape a launch plan's measured behavior.
/// Part of the plan key: plans built for one machine configuration are
/// not served to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKnobs {
    /// Warp scheduling policy.
    pub sched: SchedPolicy,
    /// Serial or parallel simulation.
    pub sim_mode: SimMode,
    /// Event-horizon fast-forward on/off.
    pub fast_forward: bool,
}

impl SimKnobs {
    /// Extracts the knobs from a machine configuration.
    pub fn from_config(cfg: &OrinConfig) -> Self {
        Self {
            sched: cfg.sched,
            sim_mode: cfg.sim_mode,
            fast_forward: cfg.fast_forward,
        }
    }

    /// Extracts the knobs from a live GPU.
    pub fn of(gpu: &Gpu) -> Self {
        Self::from_config(gpu.config())
    }
}

/// A complete description of a GEMM the engine may be asked to run: the
/// plan-cache key. Everything launch-relevant is here; operand *values*
/// are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmDesc {
    /// Output rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Table-3 strategy.
    pub strategy: Strategy,
    /// Signed code bitwidth of the quantized values.
    pub bitwidth: u32,
    /// Packing spec used by the VitBit paths.
    pub spec: PackSpec,
    /// Tensor:CUDA column ratio (`None` = the mode's calibrated default).
    pub ratio: Option<CoreRatio>,
    /// Measure-and-choose dispatch for the fused methods (see
    /// [`crate::strategy::ExecConfig::adaptive`]).
    pub adaptive: bool,
    /// Identity of the stationary `B` operand when it is a weight: the
    /// engine stages (packs) it once and reuses the artifacts on every
    /// execute. `None` marks an activation-valued `B` (attention scores,
    /// `probs x V`), staged per request.
    pub weight: Option<u64>,
    /// Simulator knobs the plan was built for.
    pub knobs: SimKnobs,
}

impl GemmDesc {
    /// Builds a desc from an [`crate::strategy::ExecConfig`] and a live
    /// GPU (the common construction).
    pub fn from_exec(
        strategy: Strategy,
        cfg: &crate::strategy::ExecConfig,
        gpu: &Gpu,
        m: usize,
        k: usize,
        n: usize,
        weight: Option<u64>,
    ) -> Self {
        Self {
            m,
            k,
            n,
            strategy,
            bitwidth: cfg.bitwidth,
            spec: cfg.spec,
            ratio: cfg.ratio,
            adaptive: cfg.adaptive,
            weight,
            knobs: SimKnobs::of(gpu),
        }
    }

    /// The fused-kernel mode this desc's strategy maps to, when fused.
    pub fn fused_mode(&self) -> Option<FusedMode> {
        match self.strategy {
            Strategy::Tacker => Some(FusedMode::Tacker),
            Strategy::TcIcFc => Some(FusedMode::TcIcFc),
            Strategy::VitBit => Some(FusedMode::VitBit(self.spec)),
            _ => None,
        }
    }
}

/// Opaque handle to a cached plan, returned by [`Engine::prepare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(u64);

/// Fixed policy-resolution cost of a direct (non-fused) plan, in build
/// work units.
const DIRECT_POLICY_UNITS: u64 = 16;

#[derive(Debug, Clone)]
enum PlanBody {
    /// Tc / Ic / Fc / IcFc: a single standalone driver, no plan state
    /// beyond the dispatch decision.
    Direct,
    /// A fused launch plan plus (for weight `B`s) its staged operands.
    Fused {
        plan: Arc<FusedPlan>,
        staged: Option<Arc<FusedB>>,
    },
}

/// A prepared GEMM: the resolved launch decisions for one [`GemmDesc`].
#[derive(Debug, Clone)]
pub struct GemmPlan {
    /// The desc this plan answers.
    pub desc: GemmDesc,
    body: PlanBody,
    /// Build work performed but not yet attributed to an execute.
    pending_build: u64,
    last_use: u64,
}

impl GemmPlan {
    /// The fused launch plan, when this strategy fuses.
    pub fn fused(&self) -> Option<&FusedPlan> {
        match &self.body {
            PlanBody::Fused { plan, .. } => Some(plan),
            PlanBody::Direct => None,
        }
    }

    /// Whether the stationary weight operand is already staged (packed
    /// and upload-shaped). Always `false` for activation-`B` plans.
    pub fn weight_staged(&self) -> bool {
        matches!(
            &self.body,
            PlanBody::Fused {
                staged: Some(_),
                ..
            }
        )
    }
}

/// LRU cache of prepared plans, keyed by [`GemmDesc`].
#[derive(Debug)]
pub struct PlanCache {
    by_desc: HashMap<GemmDesc, PlanId>,
    slots: HashMap<PlanId, GemmPlan>,
    capacity: usize,
    tick: u64,
    next_id: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// Default number of cached plans — generous for a full ViT encoder
    /// (a dozen distinct shapes per strategy).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Empty cache holding at most `capacity` plans.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            by_desc: HashMap::new(),
            slots: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            next_id: 0,
        }
    }

    /// Cached plans.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn touch(&mut self, id: PlanId) {
        self.tick += 1;
        if let Some(p) = self.slots.get_mut(&id) {
            p.last_use = self.tick;
        }
    }

    fn lookup(&mut self, desc: &GemmDesc) -> Option<PlanId> {
        let id = *self.by_desc.get(desc)?;
        self.touch(id);
        Some(id)
    }

    fn insert(&mut self, plan: GemmPlan) -> PlanId {
        let id = PlanId(self.next_id);
        self.next_id += 1;
        self.by_desc.insert(plan.desc, id);
        self.slots.insert(id, plan);
        self.touch(id);
        if self.slots.len() > self.capacity {
            // Evict the least-recently-used plan.
            if let Some((&victim, _)) = self.slots.iter().min_by_key(|(_, p)| p.last_use) {
                if let Some(p) = self.slots.remove(&victim) {
                    self.by_desc.remove(&p.desc);
                }
            }
        }
        id
    }
}

/// Cumulative engine-side counters, mirrored per launch into
/// [`vitbit_sim::KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `prepare` calls answered from the plan cache.
    pub plan_cache_hits: u64,
    /// `prepare` calls that built a new plan.
    pub plan_cache_misses: u64,
    /// Total plan-build work units (policy resolution + weight staging).
    pub plan_build_units: u64,
    /// `execute` calls served.
    pub executes: u64,
}

/// Winner map of the adaptive measure-and-choose dispatch, keyed exactly
/// like the legacy `GemmTuner`: `(strategy, m, n, k)`, shared engine-wide
/// so one measurement serves every plan of that shape.
pub(crate) type AdaptiveChoices = HashMap<(Strategy, usize, usize, usize), bool>;

/// The plan/execute engine: owns the plan cache, the packed-weight cache
/// and the adaptive winner map.
///
/// ```
/// use vitbit_plan::{Engine, GemmDesc, ExecConfig, Strategy};
/// use vitbit_sim::{Gpu, OrinConfig};
/// use vitbit_tensor::gen;
///
/// let mut gpu = Gpu::new(OrinConfig::test_small(), 64 << 20);
/// let mut engine = Engine::new();
/// let cfg = ExecConfig::int6();
/// let a = gen::uniform_i8(16, 32, -32, 31, 1);
/// let b = gen::uniform_i8(32, 320, -32, 31, 2);
/// let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &gpu, 16, 32, 320, Some(7));
/// let id = engine.prepare(desc);
/// let first = engine.execute(&mut gpu, id, &a, &b);
/// let again = engine.execute(&mut gpu, id, &a, &b);
/// assert_eq!(first.c, again.c);
/// assert!(first.stats.plan_build_cycles > 0); // built + staged here
/// assert_eq!(again.stats.plan_build_cycles, 0); // hot path: no build work
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    plans: PlanCache,
    weights: PackedWeightCache,
    choices: AdaptiveChoices,
    stats: EngineStats,
}

impl Engine {
    /// Engine with the default plan-cache capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit plan-cache capacity.
    pub fn with_plan_capacity(capacity: usize) -> Self {
        Self {
            plans: PlanCache::with_capacity(capacity),
            ..Self::default()
        }
    }

    /// Resolves `desc` into a plan, building it on first sight: pack
    /// policy, Equation-1 split, padded geometry, role programs and the
    /// dispatch order. Idempotent and cheap on repeat — the LRU cache
    /// answers.
    pub fn prepare(&mut self, desc: GemmDesc) -> PlanId {
        if let Some(id) = self.plans.lookup(&desc) {
            self.stats.plan_cache_hits += 1;
            return id;
        }
        self.stats.plan_cache_misses += 1;
        let (body, build) = match desc.fused_mode() {
            Some(mode) => {
                let ratio = desc.ratio.unwrap_or_else(|| mode.default_ratio());
                let plan = plan_fused(desc.m, desc.k, desc.n, mode, ratio);
                let units = plan.plan_units;
                (
                    PlanBody::Fused {
                        plan: Arc::new(plan),
                        staged: None,
                    },
                    units,
                )
            }
            None => (PlanBody::Direct, DIRECT_POLICY_UNITS),
        };
        self.stats.plan_build_units += build;
        self.plans.insert(GemmPlan {
            desc,
            body,
            pending_build: build,
            last_use: 0,
        })
    }

    /// Executes a prepared plan on concrete operands. The first execute
    /// of a weight-`B` plan stages (packs) the weight through the engine's
    /// [`PackedWeightCache`]; every later execute reuses the staged
    /// artifacts — zero re-packing, zero policy recomputation. The
    /// returned stats carry the plan counters: `plan_build_cycles` is the
    /// build work attributed to *this* call (zero on the hot path).
    ///
    /// # Panics
    /// Panics when `id` is unknown (or was evicted), or when operand
    /// shapes disagree with the plan's desc.
    pub fn execute(
        &mut self,
        gpu: &mut Gpu,
        id: PlanId,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
    ) -> GemmOut {
        self.plans.touch(id);
        let plan = self
            .plans
            .slots
            .get_mut(&id)
            .expect("unknown or evicted PlanId");
        let desc = plan.desc;
        assert_eq!((a.rows(), a.cols()), (desc.m, desc.k), "A shape vs desc");
        assert_eq!((b.rows(), b.cols()), (desc.k, desc.n), "B shape vs desc");

        let mut build = std::mem::take(&mut plan.pending_build);
        let out = match &mut plan.body {
            PlanBody::Direct => match desc.strategy {
                Strategy::Tc => run_tc(gpu, a, b),
                Strategy::Ic => run_ic(gpu, a, b),
                Strategy::Fc => run_fc(gpu, a, b),
                Strategy::IcFc => run_ic_fc(gpu, a, b),
                _ => unreachable!("fused strategy with direct plan body"),
            },
            PlanBody::Fused {
                plan: fplan,
                staged,
            } => {
                // Stage B: weights once (through the packed-weight cache),
                // activations per request (their values change each call —
                // that staging is execute work, not plan-build work).
                let run_fused_now = |gpu: &mut Gpu,
                                     weights: &mut PackedWeightCache,
                                     staged: &mut Option<Arc<FusedB>>,
                                     build: &mut u64| {
                    let staged_b: Arc<FusedB> = match (desc.weight, staged.as_ref()) {
                        (Some(_), Some(s)) => Arc::clone(s),
                        (Some(wid), None) => {
                            let s = Arc::new(prepare_fused_b(fplan, b, Some((weights, wid))));
                            *build += s.prep_units;
                            *staged = Some(Arc::clone(&s));
                            s
                        }
                        (None, _) => Arc::new(prepare_fused_b(fplan, b, None)),
                    };
                    execute_fused(gpu, fplan, a, b, &staged_b)
                };
                let fusedlike = true; // all PlanBody::Fused strategies
                if desc.adaptive && fusedlike {
                    // Measure-and-choose, keyed exactly like the legacy
                    // GemmTuner so launch sequences (and thus L2 state)
                    // are reproduced verbatim.
                    let key = (desc.strategy, desc.m, desc.n, desc.k);
                    match self.choices.get(&key) {
                        Some(true) => run_fused_now(gpu, &mut self.weights, staged, &mut build),
                        Some(false) => run_tc(gpu, a, b),
                        None => {
                            let fused = run_fused_now(gpu, &mut self.weights, staged, &mut build);
                            let tc = run_tc(gpu, a, b);
                            let use_fused = fused.stats.cycles <= tc.stats.cycles;
                            self.choices.insert(key, use_fused);
                            if use_fused {
                                fused
                            } else {
                                tc
                            }
                        }
                    }
                } else {
                    run_fused_now(gpu, &mut self.weights, staged, &mut build)
                }
            }
        };
        self.stats.executes += 1;
        self.stats.plan_build_units += build.saturating_sub(0);
        let mut out = out;
        out.stats.plan_build_cycles = build;
        if build > 0 {
            out.stats.plan_cache_misses = 1;
        } else {
            out.stats.plan_cache_hits = 1;
        }
        out
    }

    /// Prepare + execute in one call (the shape the deprecated one-shot
    /// shims use).
    pub fn run(
        &mut self,
        gpu: &mut Gpu,
        desc: GemmDesc,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
    ) -> GemmOut {
        let id = self.prepare(desc);
        self.execute(gpu, id, a, b)
    }

    /// Cumulative engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Cached plans.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Read access to a cached plan.
    pub fn plan(&self, id: PlanId) -> Option<&GemmPlan> {
        self.plans.slots.get(&id)
    }

    /// The engine's packed-weight cache.
    pub fn weights(&self) -> &PackedWeightCache {
        &self.weights
    }

    /// Mutable access to the packed-weight cache (the legacy shims swap a
    /// caller-owned cache in and out here).
    pub fn weights_mut(&mut self) -> &mut PackedWeightCache {
        &mut self.weights
    }

    pub(crate) fn choices_mut(&mut self) -> &mut AdaptiveChoices {
        &mut self.choices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::ExecConfig;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Matrix<i8>, Matrix<i8>) {
        (
            gen::uniform_i8(m, k, -32, 31, seed),
            gen::uniform_i8(k, n, -32, 31, seed + 1),
        )
    }

    #[test]
    fn prepare_hits_cache_on_repeat() {
        let g = gpu();
        let mut e = Engine::new();
        let cfg = ExecConfig::int6();
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, Some(1));
        let id1 = e.prepare(desc);
        let id2 = e.prepare(desc);
        assert_eq!(id1, id2);
        assert_eq!(e.stats().plan_cache_hits, 1);
        assert_eq!(e.stats().plan_cache_misses, 1);
        assert_eq!(e.plan_count(), 1);
    }

    #[test]
    fn hot_path_does_no_build_work() {
        let mut g = gpu();
        let mut e = Engine::new();
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let (a, b) = mats(16, 32, 320, 3);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, Some(9));
        let id = e.prepare(desc);
        let cold = e.execute(&mut g, id, &a, &b);
        assert!(cold.stats.plan_build_cycles > 0);
        assert_eq!(cold.stats.plan_cache_misses, 1);
        assert!(e.plan(id).unwrap().weight_staged());
        let weight_misses = e.weights().misses();
        let hot = e.execute(&mut g, id, &a, &b);
        assert_eq!(hot.stats.plan_build_cycles, 0, "no build work on reuse");
        assert_eq!(hot.stats.plan_cache_hits, 1);
        assert_eq!(e.weights().misses(), weight_misses, "no re-packing");
        assert_eq!(hot.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn every_strategy_computes_the_same_gemm_via_engine() {
        let mut g = gpu();
        let mut e = Engine::new();
        let cfg = ExecConfig::int6();
        let (a, b) = mats(20, 32, 320, 5);
        let want = gemm_i8_i32(&a, &b);
        for s in Strategy::ALL {
            let desc = GemmDesc::from_exec(s, &cfg, &g, 20, 32, 320, None);
            let out = e.run(&mut g, desc, &a, &b);
            assert_eq!(out.c, want, "strategy {}", s.name());
        }
    }

    #[test]
    fn lru_evicts_oldest_plan() {
        let g = gpu();
        let mut e = Engine::with_plan_capacity(2);
        let cfg = ExecConfig::int6();
        let d1 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 128, None);
        let d2 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 256, None);
        let d3 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 512, None);
        let id1 = e.prepare(d1);
        let _id2 = e.prepare(d2);
        let _id1_again = e.prepare(d1); // refresh d1
        let _id3 = e.prepare(d3); // evicts d2, not d1
        assert_eq!(e.plan_count(), 2);
        assert_eq!(e.prepare(d1), id1, "d1 survived the eviction");
        assert_eq!(e.stats().plan_cache_misses, 4 - 1); // d1, d2, d3 built once
    }

    #[test]
    fn activation_plans_restage_per_call_but_share_the_plan() {
        let mut g = gpu();
        let mut e = Engine::new();
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let (a, b) = mats(16, 32, 320, 11);
        let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, None);
        let id = e.prepare(desc);
        let first = e.execute(&mut g, id, &a, &b);
        assert!(!e.plan(id).unwrap().weight_staged());
        // Different activation values through the same plan.
        let (_, b2) = mats(16, 32, 320, 13);
        let second = e.execute(&mut g, id, &a, &b2);
        assert_eq!(second.c, gemm_i8_i32(&a, &b2));
        assert_eq!(first.stats.plan_cache_misses, 1);
        assert_eq!(second.stats.plan_cache_hits, 1);
    }

    #[test]
    #[should_panic(expected = "unknown or evicted PlanId")]
    fn evicted_plan_panics_clearly() {
        let mut g = gpu();
        let mut e = Engine::with_plan_capacity(1);
        let cfg = ExecConfig::int6();
        let d1 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 128, None);
        let d2 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 256, None);
        let id1 = e.prepare(d1);
        let _ = e.prepare(d2); // evicts d1
        let (a, b) = mats(16, 32, 128, 17);
        let _ = e.execute(&mut g, id1, &a, &b);
    }
}
