//! # vitbit-plan: plan once, execute per request
//!
//! VitBit's fused kernel is defined by decisions made *before* launch —
//! the Figure-3 pack policy, the Equation-1 `n : 1` INT/FP split, the
//! calibrated `m = 4` Tensor:CUDA ratio, and the packed stationary
//! weights. This crate separates those decisions from the per-request
//! work, in the emit-once/execute-many shape APNN-TC demonstrates for
//! arbitrary-precision kernels:
//!
//! * a [`GemmDesc`] names a GEMM: shape, [`Strategy`], bitwidth/spec,
//!   ratio, adaptivity, optional stationary-weight identity and the
//!   simulator knobs;
//! * [`Engine::prepare`] resolves the desc into a [`GemmPlan`] — column
//!   split, padded geometry, role programs, dispatch order — and caches
//!   it in an LRU [`PlanCache`] keyed by the desc;
//! * [`Engine::execute`] runs a prepared plan on concrete operands,
//!   staging stationary weights exactly once (packing included) and
//!   stamping the plan-cache counters into the returned
//!   [`vitbit_sim::KernelStats`].
//!
//! Repeated execution of one plan performs **zero** re-packing and
//! **zero** policy/ratio recomputation: `plan_build_cycles` is zero on
//! the hot path, which the `figures --plan-stats` dump makes visible.
//!
//! The Table-3 [`Strategy`] type (moved here from `vitbit-exec`, which
//! re-exports it) still carries the legacy one-shot `run_gemm*` entry
//! points as `#[deprecated]` shims over the engine.
//!
//! Since the fault-injection PR the engine is also the recovery layer:
//! [`Engine::execute`] returns `Result<GemmOut, EngineError>`, verifies
//! outputs with ABFT checksums when [`GemmDesc::abft`] asks for it, and
//! absorbs launch faults through a retry → rebuild → fallback →
//! quarantine ladder (see `DESIGN.md` §9).
//!
//! The serving PR adds the batched/async/sharded layer on top (see
//! `DESIGN.md` §13):
//!
//! * [`Engine::execute_batch`] serves a request queue against one plan,
//!   replaying the converged launch once the machine's timing state
//!   reaches its fixed point — bit-identical to sequential execution;
//! * [`Engine::submit`] / [`Engine::drain`] accept requests
//!   asynchronously with deterministic, ticket-ordered completion;
//! * [`GpuPool`] shards requests across N simulated GPUs by plan
//!   affinity;
//! * [`Engine::export_plans`] / [`Engine::import_plans`] persist
//!   resolved plans (+ verification proofs) so a cold replica boots
//!   with zero policy resolution and zero re-verification.

#![warn(clippy::unwrap_used)]

pub mod engine;
pub mod persist;
pub mod serve;
pub mod strategy;

pub use engine::{
    BatchResult, Engine, EngineError, EngineStats, FaultCause, GemmDesc, GemmPlan, LadderEvent,
    LadderRung, PlanCache, PlanId, PlanProof, PlanVerifier, ProgramCheck, RequestOutcome,
    ServePath, SimKnobs,
};
pub use persist::{ImportSummary, PersistError};
pub use serve::{
    render_serving_table, Completion, DeviceStatus, GpuPool, HealthPolicy, HealthState, PoolStats,
    Ticket,
};
pub use strategy::{ExecConfig, GemmTuner, Strategy};
pub use vitbit_kernels::gemm::{GemmOut, PackedWeightCache, WeightCtx};
