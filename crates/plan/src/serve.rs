//! The serving layer: asynchronous submission on one engine, and
//! plan-affinity sharding across a pool of simulated GPUs.
//!
//! # Async submission ([`Engine::submit`] / [`Engine::drain`])
//!
//! `submit` resolves the plan immediately (verification and shape
//! errors surface at submission time), parks the request on a queue and
//! returns a monotonically increasing [`Ticket`]. `drain` serves the
//! queue: a bounded worker pool (`std::thread::scope`, the same
//! hermetic shim the parallel simulator uses) pre-stages activation-`B`
//! operands — a pure function of `(plan, B)` — and the main thread then
//! executes every request **in ticket order** against the single
//! simulated GPU. Completions are therefore deterministic: same
//! submissions, same order, same bits, regardless of worker count.
//!
//! # Sharding ([`GpuPool`])
//!
//! A pool owns N `(Gpu, Engine)` shards. Requests route by **plan
//! affinity**: a deterministic hash of the full [`GemmDesc`] picks the
//! shard, so every request for one desc lands where its plan (and
//! staged weight, and replay state) already lives. The per-device
//! [`EngineStats`] carry `affinity_hits`/`affinity_misses`; a
//! steady-state serving mix approaches a hit rate of 1.0.

use crate::engine::{
    Engine, EngineError, EngineStats, GemmDesc, PlanId, PlanVerifier, RequestOutcome,
};
use crate::persist::{ImportSummary, PersistError};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use vitbit_kernels::gemm::{prepare_fused_b, FusedB, FusedPlan};
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::Matrix;

/// Handle to a submitted request, ordered: completions drain in ticket
/// order, so two runs that submit identically complete identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub(crate) u64);

impl Ticket {
    /// The ticket's position in the submission order.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// A finished async request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The ticket [`Engine::submit`] (or [`GpuPool::submit`]) returned.
    pub ticket: Ticket,
    /// The served outcome, or the refusal (e.g. the plan was evicted
    /// between submission and drain).
    pub result: Result<RequestOutcome, EngineError>,
}

/// A parked request awaiting [`Engine::drain`].
#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub(crate) ticket: u64,
    pub(crate) plan: PlanId,
    pub(crate) a: Matrix<i8>,
    pub(crate) b: Matrix<i8>,
}

/// Worker count for the pre-staging pool: enough to cover the host,
/// never more than the jobs.
fn stage_workers(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(jobs)
        .max(1)
}

impl Engine {
    /// Accepts a request asynchronously. The plan is resolved (and
    /// verified, when the desc asks) *now* — submission fails fast; the
    /// launch happens at [`Engine::drain`].
    ///
    /// # Errors
    /// [`Engine::prepare`]'s contract, plus
    /// [`EngineError::ShapeMismatch`] checked eagerly against the desc
    /// and [`EngineError::Overloaded`] when the pending queue is at its
    /// configured bound ([`Engine::set_queue_bound`]).
    pub fn submit(
        &mut self,
        desc: GemmDesc,
        a: Matrix<i8>,
        b: Matrix<i8>,
    ) -> Result<Ticket, EngineError> {
        if self.would_overload() {
            self.stats_mut().overload_rejections += 1;
            return Err(EngineError::Overloaded {
                pending: self.pending.len(),
                bound: self.queue_bound.unwrap_or(0),
            });
        }
        self.submit_unchecked(desc, a, b)
    }

    /// [`Engine::submit`] minus admission control: the pool's ticket
    /// failover re-homes already-admitted requests through here — work
    /// accepted once is never bounced by the target shard's bound.
    pub(crate) fn submit_unchecked(
        &mut self,
        desc: GemmDesc,
        a: Matrix<i8>,
        b: Matrix<i8>,
    ) -> Result<Ticket, EngineError> {
        if (a.rows(), a.cols()) != (desc.m, desc.k) || (b.rows(), b.cols()) != (desc.k, desc.n) {
            return Err(EngineError::ShapeMismatch {
                expected: (desc.m, desc.k, desc.n),
                a: (a.rows(), a.cols()),
                b: (b.rows(), b.cols()),
            });
        }
        let plan = self.prepare(desc)?;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.pending.push(PendingRequest { ticket, plan, a, b });
        Ok(Ticket(ticket))
    }

    /// Requests submitted but not yet drained.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Serves every pending request and returns the completions in
    /// ticket order.
    ///
    /// Activation-`B` stagings are precomputed on a bounded worker pool;
    /// execution itself is strictly sequential in ticket order on the
    /// caller's GPU, so results are bit-identical to a sequential
    /// [`Engine::execute`] loop over the same requests — worker count
    /// and scheduling never show through.
    pub fn drain(&mut self, gpu: &mut Gpu) -> Vec<Completion> {
        let queue = std::mem::take(&mut self.pending);
        if queue.is_empty() {
            return Vec::new();
        }

        // Phase 1: pre-stage activation-B operands in parallel. Only
        // fused plans with a non-weight B benefit; everything else
        // stages inline (weights stage once through the shared cache).
        let jobs: Vec<(usize, Arc<FusedPlan>, &Matrix<i8>)> = queue
            .iter()
            .enumerate()
            .filter_map(|(i, req)| {
                let plan = self.plan(req.plan)?;
                if plan.desc.weight.is_some() {
                    return None;
                }
                let fused = plan.fused()?;
                // An adaptive plan that has not measured yet may launch
                // run_tc instead; staging is still correct (it is keyed
                // to the fused plan, consumed only by the fused path).
                Some((i, Arc::new(fused.clone()), &req.b))
            })
            .collect();
        let mut staged: Vec<Option<Arc<FusedB>>> = (0..queue.len()).map(|_| None).collect();
        if !jobs.is_empty() {
            let workers = stage_workers(jobs.len());
            let mut results: Vec<(usize, Arc<FusedB>)> = Vec::with_capacity(jobs.len());
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let jobs = &jobs;
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut j = w;
                        while j < jobs.len() {
                            let (idx, plan, b) = &jobs[j];
                            out.push((*idx, Arc::new(prepare_fused_b(plan, b, None))));
                            j += workers;
                        }
                        out
                    }));
                }
                for h in handles {
                    if let Ok(part) = h.join() {
                        results.extend(part);
                    }
                }
            });
            for (idx, fb) in results {
                staged[idx] = Some(fb);
            }
        }

        // Phase 2: execute in ticket order on the single machine.
        let mut completions = Vec::with_capacity(queue.len());
        for (i, req) in queue.into_iter().enumerate() {
            let prestaged = staged[i].take();
            let result = self.serve_one(gpu, req.plan, &req.a, &req.b, true, prestaged);
            completions.push(Completion {
                ticket: Ticket(req.ticket),
                result,
            });
        }
        completions.sort_by_key(|c| c.ticket);
        completions
    }
}

/// Health of one pool shard (one device fault domain). States are
/// ordered and transitions are monotonic: a shard never recovers on its
/// own (the counters driving the FSM are cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// Observed faults (failed launches / ABFT mismatches) at or past
    /// the policy's degrade threshold; still serving — the recovery
    /// ladder is absorbing the damage.
    Degraded,
    /// Out of rotation: quarantined plans or drain-deadline misses
    /// crossed the eviction threshold (or an operator called
    /// [`GpuPool::evict_device`]). Its plans and queued tickets have
    /// failed over to healthy shards.
    Evicted,
}

/// Thresholds and limits driving the pool's per-shard health FSM.
///
/// Every threshold compares against a **cumulative** per-shard counter,
/// so the FSM is deterministic given deterministic fault injection;
/// `u64::MAX` disables a signal. The drain deadline is the only
/// wall-clock signal — a miss feeds *future* routing (health), never
/// the completions of the drain that missed, so completion payloads
/// stay deterministic regardless of host speed.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Faults observed on a shard ([`EngineStats::faults_detected`])
    /// before it is marked [`HealthState::Degraded`].
    pub degrade_after_faults: u64,
    /// Quarantined plans on a shard before it is evicted — a quarantine
    /// means the recovery ladder ran dry, the strongest device-distrust
    /// signal the engine produces.
    pub evict_after_quarantines: u64,
    /// Drain-deadline misses before eviction.
    pub evict_after_deadline_misses: u64,
    /// Admission-control bound installed on every shard's pending queue
    /// (`None` = unbounded): at the bound, [`GpuPool::submit`] refuses
    /// with [`EngineError::Overloaded`].
    pub max_pending: Option<usize>,
    /// Wall-clock budget for one shard's drain; exceeding it counts one
    /// deadline miss against that shard (`None` = no watchdog).
    pub drain_deadline: Option<std::time::Duration>,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            degrade_after_faults: 1,
            evict_after_quarantines: 2,
            evict_after_deadline_misses: 2,
            max_pending: None,
            drain_deadline: None,
        }
    }
}

/// Pool-level counters (the shard engines keep their own
/// [`EngineStats`]; these count events only the pool can see).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Shards moved to [`HealthState::Evicted`].
    pub evictions: u64,
    /// Plans re-homed from evicted shards via export/import (each
    /// re-validated fail-closed on its target shard).
    pub plans_failed_over: u64,
    /// Queued tickets re-routed off evicted shards.
    pub tickets_failed_over: u64,
    /// Requests answered by the pool-level host reference path: every
    /// device evicted, or a failed-over ticket no healthy shard could
    /// re-prepare. Graceful degradation, not an error.
    pub host_answers: u64,
    /// Shard drains that exceeded the policy's deadline.
    pub deadline_misses: u64,
    /// Scoped-thread parallel drains performed.
    pub parallel_drains: u64,
    /// Serial (differential-oracle) drains performed.
    pub serial_drains: u64,
}

/// One device's full serving status: health, engine counters and the
/// simulator's per-device fault observations.
#[derive(Debug, Clone)]
pub struct DeviceStatus {
    /// Shard index.
    pub device: usize,
    /// Current health state.
    pub health: HealthState,
    /// The shard engine's cumulative counters.
    pub stats: EngineStats,
    /// Plans currently quarantined on this shard.
    pub quarantined_plans: usize,
    /// Drain-deadline misses charged to this shard.
    pub deadline_misses: u64,
    /// Requests queued on this shard, not yet drained.
    pub pending: usize,
    /// Faults the simulator injected during the device's most recent
    /// launch (surfaced even for failed launches).
    pub last_launch_faults: u64,
    /// Cumulative injected faults across every launch on the device.
    pub faults_injected_total: u64,
}

/// One simulated device and its serving engine.
struct Shard {
    gpu: Gpu,
    engine: Engine,
    health: HealthState,
    deadline_misses: u64,
}

/// A request parked for the pool-level host reference path (graceful
/// degradation / failover overflow), answered at drain in ticket order.
struct HostParked {
    ticket: u64,
    a: Matrix<i8>,
    b: Matrix<i8>,
}

/// N simulated GPUs behind one serving front door, with plan-affinity
/// routing: a request's [`GemmDesc`] hashes to its home shard, so plans,
/// staged weights and replay state never migrate.
///
/// Since the fault-domain PR each shard carries a [`HealthState`] driven
/// by the [`HealthPolicy`] thresholds. Routing only considers
/// non-evicted shards; evicting a shard fails its resident plans and
/// queued tickets over to the survivors, and with *every* device
/// evicted the pool still answers from the host reference path
/// ([`PoolStats::host_answers`]). [`GpuPool::drain`] runs the shards on
/// scoped threads — legal because the per-shard machines share nothing —
/// and merges completions back into one global-ticket-ordered stream.
pub struct GpuPool {
    shards: Vec<Shard>,
    next_ticket: u64,
    /// Global ticket -> (shard index, shard-local ticket).
    routes: HashMap<u64, (usize, Ticket)>,
    policy: HealthPolicy,
    pool_stats: PoolStats,
    /// Requests awaiting a host-reference answer at the next drain.
    host_queue: Vec<HostParked>,
}

impl GpuPool {
    /// A pool of `devices` identical machines.
    ///
    /// # Panics
    /// Panics when `devices` is zero.
    pub fn new(devices: usize, cfg: &OrinConfig, mem_bytes: u32) -> Self {
        assert!(devices > 0, "a pool needs at least one device");
        let cfgs: Vec<OrinConfig> = (0..devices).map(|_| cfg.clone()).collect();
        Self::with_devices(&cfgs, mem_bytes)
    }

    /// A pool of heterogeneous machines, one per config (chaos testing
    /// gives individual devices their own fault injection this way).
    ///
    /// # Panics
    /// Panics when `cfgs` is empty.
    pub fn with_devices(cfgs: &[OrinConfig], mem_bytes: u32) -> Self {
        assert!(!cfgs.is_empty(), "a pool needs at least one device");
        Self {
            shards: cfgs
                .iter()
                .map(|cfg| Shard {
                    gpu: Gpu::new(cfg.clone(), mem_bytes),
                    engine: Engine::new(),
                    health: HealthState::Healthy,
                    deadline_misses: 0,
                })
                .collect(),
            next_ticket: 0,
            routes: HashMap::new(),
            policy: HealthPolicy::default(),
            pool_stats: PoolStats::default(),
            host_queue: Vec::new(),
        }
    }

    /// Installs a plan verifier on every shard engine.
    #[must_use]
    pub fn with_verifier(mut self, verifier: PlanVerifier) -> Self {
        for shard in &mut self.shards {
            shard.engine.set_verifier(verifier.clone());
        }
        self
    }

    /// Installs the scheduler-gating program check on every shard engine
    /// (see [`Engine::set_program_check`]).
    #[must_use]
    pub fn with_program_check(mut self, check: crate::engine::ProgramCheck) -> Self {
        for shard in &mut self.shards {
            shard.engine.set_program_check(check.clone());
        }
        self
    }

    /// Installs a health policy, applying its admission-control bound to
    /// every shard engine.
    #[must_use]
    pub fn with_health_policy(mut self, policy: HealthPolicy) -> Self {
        for shard in &mut self.shards {
            shard.engine.set_queue_bound(policy.max_pending);
        }
        self.policy = policy;
        self
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// Shard indices still in rotation (not evicted).
    fn healthy_indices(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.health != HealthState::Evicted)
            .map(|(i, _)| i)
            .collect()
    }

    fn desc_hash(desc: &GemmDesc) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        desc.hash(&mut h);
        h.finish()
    }

    /// The desc's home among the non-evicted shards: hash modulo the
    /// healthy count, mapped through the sorted healthy indices — so a
    /// pool that evicted shard `e` routes exactly like a fresh pool of
    /// the surviving devices (the failover-determinism contract).
    /// `None` when every device is evicted (the host path answers).
    fn route_healthy(&self, desc: &GemmDesc) -> Option<usize> {
        let healthy = self.healthy_indices();
        if healthy.is_empty() {
            return None;
        }
        Some(healthy[(Self::desc_hash(desc) % healthy.len() as u64) as usize])
    }

    /// The home shard of a desc: a deterministic hash of the full plan
    /// key over the non-evicted shards. `DefaultHasher::new()` is
    /// seed-stable within a process, and routing is re-derived per
    /// process — nothing persisted depends on it. With every device
    /// evicted this returns the would-be home in the full pool; requests
    /// are host-answered in that state.
    pub fn route(&self, desc: &GemmDesc) -> usize {
        self.route_healthy(desc)
            .unwrap_or_else(|| (Self::desc_hash(desc) % self.shards.len() as u64) as usize)
    }

    /// Stamps the affinity counters for one routed request.
    fn stamp_affinity(shard: &mut Shard, desc: &GemmDesc) {
        if shard.engine.has_plan(desc) {
            shard.engine.stats_mut().affinity_hits += 1;
        } else {
            shard.engine.stats_mut().affinity_misses += 1;
        }
    }

    fn shape_check(desc: &GemmDesc, a: &Matrix<i8>, b: &Matrix<i8>) -> Result<(), EngineError> {
        if (a.rows(), a.cols()) != (desc.m, desc.k) || (b.rows(), b.cols()) != (desc.k, desc.n) {
            return Err(EngineError::ShapeMismatch {
                expected: (desc.m, desc.k, desc.n),
                a: (a.rows(), a.cols()),
                b: (b.rows(), b.cols()),
            });
        }
        Ok(())
    }

    /// Answers one request from the pool-level host reference path and
    /// counts it (graceful degradation).
    fn host_answer(&mut self, a: &Matrix<i8>, b: &Matrix<i8>) -> RequestOutcome {
        self.pool_stats.host_answers += 1;
        RequestOutcome {
            out: self.shards[0].engine.host_reference(a, b),
            served: crate::engine::ServePath::Host,
            faults: 0,
            retries: 0,
            ladder: Vec::new(),
        }
    }

    /// Prepare + execute on the desc's home shard (the synchronous
    /// path). With every device evicted, the host reference answers
    /// (counted in [`PoolStats::host_answers`]).
    ///
    /// # Errors
    /// The shard engine's [`Engine::run`] contract.
    pub fn run(
        &mut self,
        desc: GemmDesc,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
    ) -> Result<crate::GemmOut, EngineError> {
        let Some(s) = self.route_healthy(&desc) else {
            Self::shape_check(&desc, a, b)?;
            return Ok(self.host_answer(a, b).out);
        };
        let shard = &mut self.shards[s];
        Self::stamp_affinity(shard, &desc);
        let id = shard.engine.prepare(desc)?;
        let out = shard.engine.execute(&mut shard.gpu, id, a, b);
        self.refresh_health(s);
        out
    }

    /// Serves a batch of requests for one desc on its home shard via
    /// [`Engine::execute_batch`]. With every device evicted, the host
    /// reference answers each request.
    ///
    /// # Errors
    /// The shard engine's contract.
    pub fn execute_batch(
        &mut self,
        desc: GemmDesc,
        requests: &[(&Matrix<i8>, &Matrix<i8>)],
    ) -> Result<crate::engine::BatchResult, EngineError> {
        let Some(s) = self.route_healthy(&desc) else {
            let mut outcomes = Vec::with_capacity(requests.len());
            for (a, b) in requests {
                Self::shape_check(&desc, a, b)?;
                outcomes.push(self.host_answer(a, b));
            }
            return Ok(crate::engine::BatchResult { outcomes });
        };
        let shard = &mut self.shards[s];
        for _ in requests {
            Self::stamp_affinity(shard, &desc);
        }
        let id = shard.engine.prepare(desc)?;
        let out = shard.engine.execute_batch(&mut shard.gpu, id, requests);
        self.refresh_health(s);
        out
    }

    /// Async submission to the desc's home shard. Tickets are global:
    /// [`GpuPool::drain`] merges shard completions back into one
    /// deterministic, ticket-ordered stream. With every device evicted
    /// the request parks on the pool's host queue and is answered at the
    /// next drain.
    ///
    /// # Errors
    /// [`Engine::submit`]'s contract, including
    /// [`EngineError::Overloaded`] when the home shard's pending queue
    /// is at the policy bound (checked before the affinity counters are
    /// stamped, so a refused request leaves no trace in the stats).
    pub fn submit(
        &mut self,
        desc: GemmDesc,
        a: Matrix<i8>,
        b: Matrix<i8>,
    ) -> Result<Ticket, EngineError> {
        let Some(s) = self.route_healthy(&desc) else {
            Self::shape_check(&desc, &a, &b)?;
            let global = self.next_ticket;
            self.next_ticket += 1;
            self.host_queue.push(HostParked {
                ticket: global,
                a,
                b,
            });
            return Ok(Ticket(global));
        };
        let shard = &mut self.shards[s];
        if shard.engine.would_overload() {
            let pending = shard.engine.pending_count();
            shard.engine.stats_mut().overload_rejections += 1;
            return Err(EngineError::Overloaded {
                pending,
                bound: shard.engine.queue_bound().unwrap_or(0),
            });
        }
        Self::stamp_affinity(shard, &desc);
        let local = shard.engine.submit(desc, a, b)?;
        let global = self.next_ticket;
        self.next_ticket += 1;
        self.routes.insert(global, (s, local));
        Ok(Ticket(global))
    }

    /// Requests submitted but not yet drained, across all shards (plus
    /// any parked for the host path).
    pub fn pending_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.pending_count())
            .sum::<usize>()
            + self.host_queue.len()
    }

    /// Drains every shard **in parallel** — one scoped thread per shard
    /// with pending work — and returns all completions in global ticket
    /// order, each stamped with its global ticket.
    ///
    /// Parallelism is sound because shards share nothing: each thread
    /// owns one `(Gpu, Engine)` pair exclusively for the duration
    /// (`std::thread::scope` proves it borrow-wise), and each shard's
    /// completion stream is already deterministic in isolation. The
    /// global merge sorts by ticket, so interleaving across shards is
    /// fixed by submission order, not thread scheduling — completions
    /// (and per-shard stats) are bit-identical to [`GpuPool::drain_serial`].
    ///
    /// A [`HealthPolicy::drain_deadline`] watchdog charges a deadline
    /// miss to any shard whose drain overruns the budget; the miss
    /// affects *future* routing only, never this drain's payloads.
    pub fn drain(&mut self) -> Vec<Completion> {
        self.pool_stats.parallel_drains += 1;
        self.drain_inner(true)
    }

    /// [`GpuPool::drain`] with the shards drained one after another on
    /// the calling thread — the differential oracle for the parallel
    /// path (and the fallback for single-threaded hosts).
    pub fn drain_serial(&mut self) -> Vec<Completion> {
        self.pool_stats.serial_drains += 1;
        self.drain_inner(false)
    }

    fn drain_inner(&mut self, parallel: bool) -> Vec<Completion> {
        // Invert the route map: (shard, local) -> global.
        let mut back: HashMap<(usize, Ticket), u64> = HashMap::new();
        for (&global, &(s, local)) in &self.routes {
            back.insert((s, local), global);
        }

        let deadline = self.policy.drain_deadline;
        // Each element: (shard index, completions, missed_deadline).
        let mut per_shard: Vec<(usize, Vec<Completion>, bool)> = Vec::new();
        if parallel {
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (s, shard) in self.shards.iter_mut().enumerate() {
                    if shard.engine.pending_count() == 0 {
                        continue;
                    }
                    handles.push(scope.spawn(move || {
                        let t0 = std::time::Instant::now();
                        let done = shard.engine.drain(&mut shard.gpu);
                        let missed = deadline.is_some_and(|d| t0.elapsed() > d);
                        (s, done, missed)
                    }));
                }
                for h in handles {
                    match h.join() {
                        Ok(r) => per_shard.push(r),
                        Err(p) => std::panic::resume_unwind(p),
                    }
                }
            });
        } else {
            for (s, shard) in self.shards.iter_mut().enumerate() {
                if shard.engine.pending_count() == 0 {
                    continue;
                }
                let t0 = std::time::Instant::now();
                let done = shard.engine.drain(&mut shard.gpu);
                let missed = deadline.is_some_and(|d| t0.elapsed() > d);
                per_shard.push((s, done, missed));
            }
        }

        let mut all = Vec::new();
        for (s, done, missed) in per_shard {
            if missed {
                self.shards[s].deadline_misses += 1;
                self.pool_stats.deadline_misses += 1;
            }
            for mut c in done {
                if let Some(&global) = back.get(&(s, c.ticket)) {
                    self.routes.remove(&global);
                    c.ticket = Ticket(global);
                    all.push(c);
                }
            }
        }

        // Health transitions after the drain settles; an eviction here
        // fails the (now empty) shard's plans over for future traffic.
        for s in 0..self.shards.len() {
            self.refresh_health(s);
        }

        // Answer anything parked for the host path, in ticket order.
        for parked in std::mem::take(&mut self.host_queue) {
            let outcome = self.host_answer(&parked.a, &parked.b);
            all.push(Completion {
                ticket: Ticket(parked.ticket),
                result: Ok(outcome),
            });
        }

        all.sort_by_key(|c| c.ticket);
        all
    }

    /// Re-evaluates one shard's health from its cumulative counters.
    /// Transitions are monotonic (`Healthy → Degraded → Evicted`); an
    /// upgrade to `Evicted` triggers plan + ticket failover.
    fn refresh_health(&mut self, s: usize) {
        if self.shards[s].health == HealthState::Evicted {
            return;
        }
        let p = self.policy;
        let shard = &self.shards[s];
        let quarantined = shard.engine.quarantined_count() as u64;
        let computed = if quarantined >= p.evict_after_quarantines
            || shard.deadline_misses >= p.evict_after_deadline_misses
        {
            HealthState::Evicted
        } else if shard.engine.stats().faults_detected >= p.degrade_after_faults {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        let next = self.shards[s].health.max(computed);
        if next == HealthState::Evicted {
            self.transition_to_evicted(s);
        } else {
            self.shards[s].health = next;
        }
    }

    /// Forces a shard out of rotation (operator eviction / chaos
    /// testing), failing its plans and queued tickets over to the
    /// healthy shards. Idempotent.
    pub fn evict_device(&mut self, device: usize) {
        if self.shards[device].health != HealthState::Evicted {
            self.transition_to_evicted(device);
        }
    }

    fn transition_to_evicted(&mut self, s: usize) {
        self.shards[s].health = HealthState::Evicted;
        self.pool_stats.evictions += 1;
        self.failover(s);
    }

    /// Re-homes an evicted shard's state onto the survivors:
    ///
    /// 1. **Plans** — the dead shard's exported blob is split and each
    ///    entry routed to its desc's new healthy home, re-validated
    ///    fail-closed there (quarantined or checksum-damaged entries
    ///    never left the export, so only provably servable plans move).
    /// 2. **Queued tickets** — pending requests re-submit (in local
    ///    ticket order) to their new homes, keeping their *global*
    ///    tickets, so the merged completion stream is still exactly
    ///    submission-ordered. A request whose plan cannot be re-prepared
    ///    anywhere parks on the host queue — no request is ever dropped.
    fn failover(&mut self, dead: usize) {
        // 1. Plans.
        let blob = self.shards[dead].engine.export_plans();
        if let Ok(entries) = crate::persist::split_entries(&blob) {
            let mut per_shard: Vec<Vec<&[u8]>> =
                (0..self.shards.len()).map(|_| Vec::new()).collect();
            for entry in entries {
                if let Some(target) =
                    crate::persist::entry_desc(entry).and_then(|d| self.route_healthy(&d))
                {
                    per_shard[target].push(entry);
                }
            }
            for (target, entries) in per_shard.iter().enumerate() {
                if entries.is_empty() {
                    continue;
                }
                let blob = crate::persist::join_entries(entries);
                if let Ok(summary) = self.shards[target].engine.import_plans(&blob) {
                    self.pool_stats.plans_failed_over += summary.imported;
                }
            }
        }

        // 2. Queued tickets.
        let mut queued = self.shards[dead].engine.take_pending();
        queued.sort_by_key(|req| req.ticket);
        // Local ticket -> global ticket for the dead shard.
        let mut local_to_global: HashMap<u64, u64> = HashMap::new();
        for (&global, &(s, local)) in &self.routes {
            if s == dead {
                local_to_global.insert(local.0, global);
            }
        }
        for req in queued {
            let Some(&global) = local_to_global.get(&req.ticket) else {
                continue;
            };
            self.routes.remove(&global);
            self.pool_stats.tickets_failed_over += 1;
            let desc = self.shards[dead].engine.plan(req.plan).map(|p| p.desc);
            let rehomed = desc.and_then(|d| {
                let target = self.route_healthy(&d)?;
                let shard = &mut self.shards[target];
                Self::stamp_affinity(shard, &d);
                // Failed-over work was admitted once; it bypasses the
                // target's admission bound. Operands are cloned so a
                // refused re-prepare can still fall back to the host.
                shard
                    .engine
                    .submit_unchecked(d, req.a.clone(), req.b.clone())
                    .ok()
                    .map(|local| (target, local))
            });
            match rehomed {
                Some((target, local)) => {
                    self.routes.insert(global, (target, local));
                }
                None => self.host_queue.push(HostParked {
                    ticket: global,
                    a: req.a,
                    b: req.b,
                }),
            }
        }
    }

    /// One shard's health state.
    pub fn health(&self, device: usize) -> HealthState {
        self.shards[device].health
    }

    /// Pool-level counters (evictions, failover, host answers, drains).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool_stats
    }

    /// Per-device engine counters, indexed by shard.
    pub fn device_stats(&self) -> Vec<EngineStats> {
        self.shards.iter().map(|s| s.engine.stats()).collect()
    }

    /// Per-device serving status: health state, engine counters,
    /// quarantine and fault observations — the `figures --plan-stats`
    /// health columns read from here.
    pub fn device_status(&self) -> Vec<DeviceStatus> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| DeviceStatus {
                device: i,
                health: s.health,
                stats: s.engine.stats(),
                quarantined_plans: s.engine.quarantined_count(),
                deadline_misses: s.deadline_misses,
                pending: s.engine.pending_count(),
                last_launch_faults: s.gpu.last_launch_faults(),
                faults_injected_total: s.gpu.faults_injected_total(),
            })
            .collect()
    }

    /// Pool-wide counters: the field-wise sum over devices.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in self.shards.iter().map(|s| s.engine.stats()) {
            total.plan_cache_hits += s.plan_cache_hits;
            total.plan_cache_misses += s.plan_cache_misses;
            total.plan_build_units += s.plan_build_units;
            total.executes += s.executes;
            total.faults_detected += s.faults_detected;
            total.retries += s.retries;
            total.fallbacks += s.fallbacks;
            total.quarantined_plans += s.quarantined_plans;
            total.verifier_invocations += s.verifier_invocations;
            total.batches += s.batches;
            total.batch_requests += s.batch_requests;
            total.replayed_executes += s.replayed_executes;
            total.plans_imported += s.plans_imported;
            total.plans_rejected += s.plans_rejected;
            total.affinity_hits += s.affinity_hits;
            total.affinity_misses += s.affinity_misses;
            total.overload_rejections += s.overload_rejections;
            total.sched_applied += s.sched_applied;
            total.sched_rejected += s.sched_rejected;
        }
        total
    }

    /// Read access to a shard's engine (tests, stats printing).
    pub fn engine(&self, device: usize) -> &Engine {
        &self.shards[device].engine
    }

    /// Renders the serving table for this pool's current state (see
    /// [`render_serving_table`]).
    pub fn render_table(&self) -> String {
        render_serving_table(&self.device_status(), &self.pool_stats())
    }

    /// Serializes every shard's resident plans into one blob (the same
    /// format as [`Engine::export_plans`]).
    pub fn export_plans(&self) -> Vec<u8> {
        let shard_blobs: Vec<Vec<u8>> = self
            .shards
            .iter()
            .map(|s| s.engine.export_plans())
            .collect();
        let mut entries: Vec<&[u8]> = Vec::new();
        for blob in &shard_blobs {
            // Our own exports always split cleanly.
            if let Ok(parts) = crate::persist::split_entries(blob) {
                entries.extend(parts);
            }
        }
        crate::persist::join_entries(&entries)
    }

    /// Imports a plan blob, routing each entry to its desc's home shard
    /// — a warm pool boots exactly like N warm engines. Entries whose
    /// desc cannot be decoded (corruption) go to the first non-evicted
    /// shard, whose import rejects and counts them; fail-closed
    /// semantics are per entry, identical to [`Engine::import_plans`].
    ///
    /// # Errors
    /// [`PersistError`] when the blob structure itself is unusable.
    pub fn import_plans(&mut self, bytes: &[u8]) -> Result<ImportSummary, PersistError> {
        let entries = crate::persist::split_entries(bytes)?;
        let reject_home = self.healthy_indices().first().copied().unwrap_or(0);
        let mut per_shard: Vec<Vec<&[u8]>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for entry in entries {
            let shard = crate::persist::entry_desc(entry)
                .map(|d| self.route(&d))
                .unwrap_or(reject_home);
            per_shard[shard].push(entry);
        }
        let mut total = ImportSummary::default();
        for (s, entries) in per_shard.iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let blob = crate::persist::join_entries(entries);
            let summary = self.shards[s].engine.import_plans(&blob)?;
            total.imported += summary.imported;
            total.rejected += summary.rejected;
            total.already_resident += summary.already_resident;
        }
        Ok(total)
    }
}

/// Renders the per-device serving table (health, batching, affinity,
/// recovery columns), its total row and the pool-counter footer. Shared
/// by the bench CLIs and the serving tests so the two never drift.
///
/// Every total-row column — including `quar` and `dl-miss` — is the
/// column-wise sum of the device rows above it. Summing the engines'
/// *cumulative* quarantine counters or the pool's own deadline-miss
/// counter instead diverges from the rows once a shard is evicted
/// (an evicted shard's current quarantines leave the status rows, and
/// pool-level misses are charged before eviction removes the shard's).
pub fn render_serving_table(status: &[DeviceStatus], pool: &PoolStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6} {:>8} {:>6} {:>6} {:>7} {:>7}",
        "device",
        "health",
        "batches",
        "requests",
        "executes",
        "replayed",
        "aff-hit",
        "aff-miss",
        "rate",
        "retries",
        "fback",
        "quar",
        "dl-miss",
        "ovld"
    );
    let health_tag = |h: HealthState| match h {
        HealthState::Healthy => "healthy",
        HealthState::Degraded => "degrade",
        HealthState::Evicted => "evicted",
    };
    let mut total = EngineStats::default();
    let mut total_quar = 0usize;
    let mut total_dl = 0u64;
    for ds in status {
        let st = &ds.stats;
        let _ = writeln!(
            out,
            "{:<7} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6.2} {:>8} {:>6} {:>6} {:>7} {:>7}",
            format!("gpu{}", ds.device),
            health_tag(ds.health),
            st.batches,
            st.batch_requests,
            st.executes,
            st.replayed_executes,
            st.affinity_hits,
            st.affinity_misses,
            st.affinity_hit_rate(),
            st.retries,
            st.fallbacks,
            ds.quarantined_plans,
            ds.deadline_misses,
            st.overload_rejections
        );
        total.batches += st.batches;
        total.batch_requests += st.batch_requests;
        total.executes += st.executes;
        total.replayed_executes += st.replayed_executes;
        total.affinity_hits += st.affinity_hits;
        total.affinity_misses += st.affinity_misses;
        total.retries += st.retries;
        total.fallbacks += st.fallbacks;
        total.overload_rejections += st.overload_rejections;
        total_quar += ds.quarantined_plans;
        total_dl += ds.deadline_misses;
    }
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6.2} {:>8} {:>6} {:>6} {:>7} {:>7}",
        "total",
        "-",
        total.batches,
        total.batch_requests,
        total.executes,
        total.replayed_executes,
        total.affinity_hits,
        total.affinity_misses,
        total.affinity_hit_rate(),
        total.retries,
        total.fallbacks,
        total_quar,
        total_dl,
        total.overload_rejections
    );
    let _ = writeln!(
        out,
        "pool: evictions {}  plans-failed-over {}  tickets-failed-over {}  host-answers {}",
        pool.evictions, pool.plans_failed_over, pool.tickets_failed_over, pool.host_answers
    );
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::strategy::{ExecConfig, Strategy};
    use vitbit_tensor::refgemm::gemm_i8_i32;
    use vitbit_tensor::{gen, Matrix};

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Matrix<i8>, Matrix<i8>) {
        (
            gen::uniform_i8(m, k, -32, 31, seed),
            gen::uniform_i8(k, n, -32, 31, seed + 1),
        )
    }

    fn desc_for(g: &Gpu, s: Strategy, n: usize, weight: Option<u64>) -> GemmDesc {
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        GemmDesc::from_exec(s, &cfg, g, 16, 32, n, weight)
    }

    #[test]
    fn async_drain_matches_sequential_in_ticket_order() {
        let (a, b) = mats(16, 32, 320, 51);
        let (_, b2) = mats(16, 32, 320, 53);

        // Sequential reference.
        let mut g1 = gpu();
        let mut e1 = Engine::new();
        let d = desc_for(&g1, Strategy::VitBit, 320, None);
        let id = e1.prepare(d).unwrap();
        let seq: Vec<_> = [&b, &b2, &b, &b2]
            .iter()
            .map(|bb| e1.execute(&mut g1, id, &a, bb).unwrap())
            .collect();

        // Async: same requests, same order.
        let mut g2 = gpu();
        let mut e2 = Engine::new();
        let d2 = desc_for(&g2, Strategy::VitBit, 320, None);
        let tickets: Vec<_> = [&b, &b2, &b, &b2]
            .iter()
            .map(|bb| e2.submit(d2, a.clone(), (*bb).clone()).unwrap())
            .collect();
        assert_eq!(e2.pending_count(), 4);
        let done = e2.drain(&mut g2);
        assert_eq!(e2.pending_count(), 0);
        assert_eq!(done.len(), 4);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.ticket, tickets[i], "ticket order");
            let out = &c.result.as_ref().unwrap().out;
            assert_eq!(out.c, seq[i].c, "request {i}: outputs");
            assert_eq!(out.stats, seq[i].stats, "request {i}: stats");
        }
    }

    #[test]
    fn submit_fails_fast_on_shape_mismatch() {
        let g = gpu();
        let mut e = Engine::new();
        let d = desc_for(&g, Strategy::Tc, 128, None);
        let (a, b) = mats(16, 32, 256, 55); // wrong N
        assert!(matches!(
            e.submit(d, a, b),
            Err(EngineError::ShapeMismatch { .. })
        ));
        assert_eq!(e.pending_count(), 0);
    }

    #[test]
    fn pool_routes_by_affinity_and_stays_bit_identical() {
        let cfg = OrinConfig::test_small();
        let refgpu = gpu();
        let descs: Vec<GemmDesc> = [128usize, 320, 640]
            .iter()
            .flat_map(|&n| {
                [Strategy::Tc, Strategy::VitBit]
                    .into_iter()
                    .map(move |s| (s, n))
            })
            .map(|(s, n)| desc_for(&refgpu, s, n, None))
            .collect();
        for devices in [1usize, 2, 4] {
            let mut pool = GpuPool::new(devices, &cfg, 64 << 20);
            // Reference: one dedicated sequential machine per shard, fed
            // exactly the stream the router sends there — sharding must
            // equal N independent sequential engines, bit for bit.
            let mut refs: Vec<(Gpu, Engine)> =
                (0..devices).map(|_| (gpu(), Engine::new())).collect();
            for pass in 0..2u64 {
                for d in &descs {
                    let (aa, bb) = mats(d.m, d.k, d.n, 57 + d.n as u64 + pass);
                    let home = pool.route(d);
                    let got = pool.run(*d, &aa, &bb).unwrap();
                    let (g, e) = &mut refs[home];
                    let id = e.prepare(*d).unwrap();
                    let want = e.execute(g, id, &aa, &bb).unwrap();
                    assert_eq!(got.c, want.c, "{:?} n={} x{}", d.strategy, d.n, devices);
                    assert_eq!(
                        got.stats, want.stats,
                        "{:?} n={} x{}",
                        d.strategy, d.n, devices
                    );
                }
            }
            let stats = pool.stats();
            assert_eq!(stats.affinity_misses, descs.len() as u64);
            assert_eq!(stats.affinity_hits, descs.len() as u64);
            assert!((stats.affinity_hit_rate() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn pool_async_merges_ticket_ordered_completions() {
        let cfg = OrinConfig::test_small();
        let mut pool = GpuPool::new(2, &cfg, 64 << 20);
        let refgpu = gpu();
        let d1 = desc_for(&refgpu, Strategy::Tc, 128, None);
        let d2 = desc_for(&refgpu, Strategy::VitBit, 320, None);
        let (a1, b1) = mats(16, 32, 128, 61);
        let (a2, b2) = mats(16, 32, 320, 63);
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(pool.submit(d1, a1.clone(), b1.clone()).unwrap());
            tickets.push(pool.submit(d2, a2.clone(), b2.clone()).unwrap());
        }
        assert_eq!(pool.pending_count(), 6);
        let done = pool.drain();
        assert_eq!(pool.pending_count(), 0);
        assert_eq!(done.len(), 6);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.ticket, tickets[i], "global ticket order preserved");
            let out = &c.result.as_ref().unwrap().out;
            let want = if i % 2 == 0 {
                gemm_i8_i32(&a1, &b1)
            } else {
                gemm_i8_i32(&a2, &b2)
            };
            assert_eq!(out.c, want);
        }
    }

    #[test]
    fn pool_persistence_round_trips_to_the_right_shards() {
        let cfg = OrinConfig::test_small();
        let mut warm = GpuPool::new(3, &cfg, 64 << 20);
        let refgpu = gpu();
        let descs: Vec<GemmDesc> = [128usize, 320, 640, 960]
            .iter()
            .map(|&n| desc_for(&refgpu, Strategy::VitBit, n, None))
            .collect();
        for d in &descs {
            let (a, b) = mats(d.m, d.k, d.n, 71);
            warm.run(*d, &a, &b).unwrap();
        }
        let blob = warm.export_plans();

        let mut cold = GpuPool::new(3, &cfg, 64 << 20);
        let summary = cold.import_plans(&blob).unwrap();
        assert_eq!(summary.imported, descs.len() as u64);
        assert_eq!(summary.rejected, 0);
        // Every desc now affinity-hits its home shard with zero build.
        for d in &descs {
            let (a, b) = mats(d.m, d.k, d.n, 73);
            let out = cold.run(*d, &a, &b).unwrap();
            assert_eq!(out.c, gemm_i8_i32(&a, &b));
            assert_eq!(out.stats.plan_build_cycles, 0, "warm boot: no build");
        }
        let stats = cold.stats();
        assert_eq!(stats.affinity_hits, descs.len() as u64);
        assert_eq!(stats.affinity_misses, 0);
        assert_eq!(stats.plan_build_units, 0);
        assert_eq!(stats.verifier_invocations, 0);
    }
}
