//! The serving layer: asynchronous submission on one engine, and
//! plan-affinity sharding across a pool of simulated GPUs.
//!
//! # Async submission ([`Engine::submit`] / [`Engine::drain`])
//!
//! `submit` resolves the plan immediately (verification and shape
//! errors surface at submission time), parks the request on a queue and
//! returns a monotonically increasing [`Ticket`]. `drain` serves the
//! queue: a bounded worker pool (`std::thread::scope`, the same
//! hermetic shim the parallel simulator uses) pre-stages activation-`B`
//! operands — a pure function of `(plan, B)` — and the main thread then
//! executes every request **in ticket order** against the single
//! simulated GPU. Completions are therefore deterministic: same
//! submissions, same order, same bits, regardless of worker count.
//!
//! # Sharding ([`GpuPool`])
//!
//! A pool owns N `(Gpu, Engine)` shards. Requests route by **plan
//! affinity**: a deterministic hash of the full [`GemmDesc`] picks the
//! shard, so every request for one desc lands where its plan (and
//! staged weight, and replay state) already lives. The per-device
//! [`EngineStats`] carry `affinity_hits`/`affinity_misses`; a
//! steady-state serving mix approaches a hit rate of 1.0.

use crate::engine::{
    Engine, EngineError, EngineStats, GemmDesc, PlanId, PlanVerifier, RequestOutcome,
};
use crate::persist::{ImportSummary, PersistError};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use vitbit_kernels::gemm::{prepare_fused_b, FusedB, FusedPlan};
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::Matrix;

/// Handle to a submitted request, ordered: completions drain in ticket
/// order, so two runs that submit identically complete identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub(crate) u64);

impl Ticket {
    /// The ticket's position in the submission order.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// A finished async request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The ticket [`Engine::submit`] (or [`GpuPool::submit`]) returned.
    pub ticket: Ticket,
    /// The served outcome, or the refusal (e.g. the plan was evicted
    /// between submission and drain).
    pub result: Result<RequestOutcome, EngineError>,
}

/// A parked request awaiting [`Engine::drain`].
#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub(crate) ticket: u64,
    pub(crate) plan: PlanId,
    pub(crate) a: Matrix<i8>,
    pub(crate) b: Matrix<i8>,
}

/// Worker count for the pre-staging pool: enough to cover the host,
/// never more than the jobs.
fn stage_workers(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(jobs)
        .max(1)
}

impl Engine {
    /// Accepts a request asynchronously. The plan is resolved (and
    /// verified, when the desc asks) *now* — submission fails fast; the
    /// launch happens at [`Engine::drain`].
    ///
    /// # Errors
    /// [`Engine::prepare`]'s contract, plus
    /// [`EngineError::ShapeMismatch`] checked eagerly against the desc.
    pub fn submit(
        &mut self,
        desc: GemmDesc,
        a: Matrix<i8>,
        b: Matrix<i8>,
    ) -> Result<Ticket, EngineError> {
        if (a.rows(), a.cols()) != (desc.m, desc.k) || (b.rows(), b.cols()) != (desc.k, desc.n) {
            return Err(EngineError::ShapeMismatch {
                expected: (desc.m, desc.k, desc.n),
                a: (a.rows(), a.cols()),
                b: (b.rows(), b.cols()),
            });
        }
        let plan = self.prepare(desc)?;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.pending.push(PendingRequest { ticket, plan, a, b });
        Ok(Ticket(ticket))
    }

    /// Requests submitted but not yet drained.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Serves every pending request and returns the completions in
    /// ticket order.
    ///
    /// Activation-`B` stagings are precomputed on a bounded worker pool;
    /// execution itself is strictly sequential in ticket order on the
    /// caller's GPU, so results are bit-identical to a sequential
    /// [`Engine::execute`] loop over the same requests — worker count
    /// and scheduling never show through.
    pub fn drain(&mut self, gpu: &mut Gpu) -> Vec<Completion> {
        let queue = std::mem::take(&mut self.pending);
        if queue.is_empty() {
            return Vec::new();
        }

        // Phase 1: pre-stage activation-B operands in parallel. Only
        // fused plans with a non-weight B benefit; everything else
        // stages inline (weights stage once through the shared cache).
        let jobs: Vec<(usize, Arc<FusedPlan>, &Matrix<i8>)> = queue
            .iter()
            .enumerate()
            .filter_map(|(i, req)| {
                let plan = self.plan(req.plan)?;
                if plan.desc.weight.is_some() {
                    return None;
                }
                let fused = plan.fused()?;
                // An adaptive plan that has not measured yet may launch
                // run_tc instead; staging is still correct (it is keyed
                // to the fused plan, consumed only by the fused path).
                Some((i, Arc::new(fused.clone()), &req.b))
            })
            .collect();
        let mut staged: Vec<Option<Arc<FusedB>>> = (0..queue.len()).map(|_| None).collect();
        if !jobs.is_empty() {
            let workers = stage_workers(jobs.len());
            let mut results: Vec<(usize, Arc<FusedB>)> = Vec::with_capacity(jobs.len());
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let jobs = &jobs;
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut j = w;
                        while j < jobs.len() {
                            let (idx, plan, b) = &jobs[j];
                            out.push((*idx, Arc::new(prepare_fused_b(plan, b, None))));
                            j += workers;
                        }
                        out
                    }));
                }
                for h in handles {
                    if let Ok(part) = h.join() {
                        results.extend(part);
                    }
                }
            });
            for (idx, fb) in results {
                staged[idx] = Some(fb);
            }
        }

        // Phase 2: execute in ticket order on the single machine.
        let mut completions = Vec::with_capacity(queue.len());
        for (i, req) in queue.into_iter().enumerate() {
            let prestaged = staged[i].take();
            let result = self.serve_one(gpu, req.plan, &req.a, &req.b, true, prestaged);
            completions.push(Completion {
                ticket: Ticket(req.ticket),
                result,
            });
        }
        completions.sort_by_key(|c| c.ticket);
        completions
    }
}

/// One simulated device and its serving engine.
struct Shard {
    gpu: Gpu,
    engine: Engine,
}

/// N simulated GPUs behind one serving front door, with plan-affinity
/// routing: a request's [`GemmDesc`] hashes to its home shard, so plans,
/// staged weights and replay state never migrate.
pub struct GpuPool {
    shards: Vec<Shard>,
    next_ticket: u64,
    /// Global ticket -> (shard index, shard-local ticket).
    routes: HashMap<u64, (usize, Ticket)>,
}

impl GpuPool {
    /// A pool of `devices` identical machines.
    ///
    /// # Panics
    /// Panics when `devices` is zero.
    pub fn new(devices: usize, cfg: &OrinConfig, mem_bytes: u32) -> Self {
        assert!(devices > 0, "a pool needs at least one device");
        Self {
            shards: (0..devices)
                .map(|_| Shard {
                    gpu: Gpu::new(cfg.clone(), mem_bytes),
                    engine: Engine::new(),
                })
                .collect(),
            next_ticket: 0,
            routes: HashMap::new(),
        }
    }

    /// Installs a plan verifier on every shard engine.
    #[must_use]
    pub fn with_verifier(mut self, verifier: PlanVerifier) -> Self {
        for shard in &mut self.shards {
            shard.engine.set_verifier(verifier.clone());
        }
        self
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of a desc: a deterministic hash of the full plan
    /// key. `DefaultHasher::new()` is seed-stable within a process, and
    /// routing is re-derived per process — nothing persisted depends on
    /// it.
    pub fn route(&self, desc: &GemmDesc) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        desc.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Stamps the affinity counters for one routed request.
    fn stamp_affinity(shard: &mut Shard, desc: &GemmDesc) {
        if shard.engine.has_plan(desc) {
            shard.engine.stats_mut().affinity_hits += 1;
        } else {
            shard.engine.stats_mut().affinity_misses += 1;
        }
    }

    /// Prepare + execute on the desc's home shard (the synchronous
    /// path).
    ///
    /// # Errors
    /// The shard engine's [`Engine::run`] contract.
    pub fn run(
        &mut self,
        desc: GemmDesc,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
    ) -> Result<crate::GemmOut, EngineError> {
        let s = self.route(&desc);
        let shard = &mut self.shards[s];
        Self::stamp_affinity(shard, &desc);
        let id = shard.engine.prepare(desc)?;
        shard.engine.execute(&mut shard.gpu, id, a, b)
    }

    /// Serves a batch of requests for one desc on its home shard via
    /// [`Engine::execute_batch`].
    ///
    /// # Errors
    /// The shard engine's contract.
    pub fn execute_batch(
        &mut self,
        desc: GemmDesc,
        requests: &[(&Matrix<i8>, &Matrix<i8>)],
    ) -> Result<crate::engine::BatchResult, EngineError> {
        let s = self.route(&desc);
        let shard = &mut self.shards[s];
        for _ in requests {
            Self::stamp_affinity(shard, &desc);
        }
        let id = shard.engine.prepare(desc)?;
        shard.engine.execute_batch(&mut shard.gpu, id, requests)
    }

    /// Async submission to the desc's home shard. Tickets are global:
    /// [`GpuPool::drain`] merges shard completions back into one
    /// deterministic, ticket-ordered stream.
    ///
    /// # Errors
    /// [`Engine::submit`]'s contract.
    pub fn submit(
        &mut self,
        desc: GemmDesc,
        a: Matrix<i8>,
        b: Matrix<i8>,
    ) -> Result<Ticket, EngineError> {
        let s = self.route(&desc);
        let shard = &mut self.shards[s];
        Self::stamp_affinity(shard, &desc);
        let local = shard.engine.submit(desc, a, b)?;
        let global = self.next_ticket;
        self.next_ticket += 1;
        self.routes.insert(global, (s, local));
        Ok(Ticket(global))
    }

    /// Requests submitted but not yet drained, across all shards.
    pub fn pending_count(&self) -> usize {
        self.shards.iter().map(|s| s.engine.pending_count()).sum()
    }

    /// Drains every shard and returns all completions in global ticket
    /// order, each stamped with its global ticket.
    pub fn drain(&mut self) -> Vec<Completion> {
        // Invert the route map: (shard, local) -> global.
        let mut back: HashMap<(usize, Ticket), u64> = HashMap::new();
        for (&global, &(s, local)) in &self.routes {
            back.insert((s, local), global);
        }
        let mut all = Vec::new();
        for (s, shard) in self.shards.iter_mut().enumerate() {
            for mut c in shard.engine.drain(&mut shard.gpu) {
                if let Some(&global) = back.get(&(s, c.ticket)) {
                    self.routes.remove(&global);
                    c.ticket = Ticket(global);
                    all.push(c);
                }
            }
        }
        all.sort_by_key(|c| c.ticket);
        all
    }

    /// Per-device engine counters, indexed by shard.
    pub fn device_stats(&self) -> Vec<EngineStats> {
        self.shards.iter().map(|s| s.engine.stats()).collect()
    }

    /// Pool-wide counters: the field-wise sum over devices.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in self.shards.iter().map(|s| s.engine.stats()) {
            total.plan_cache_hits += s.plan_cache_hits;
            total.plan_cache_misses += s.plan_cache_misses;
            total.plan_build_units += s.plan_build_units;
            total.executes += s.executes;
            total.faults_detected += s.faults_detected;
            total.retries += s.retries;
            total.fallbacks += s.fallbacks;
            total.quarantined_plans += s.quarantined_plans;
            total.verifier_invocations += s.verifier_invocations;
            total.batches += s.batches;
            total.batch_requests += s.batch_requests;
            total.replayed_executes += s.replayed_executes;
            total.plans_imported += s.plans_imported;
            total.plans_rejected += s.plans_rejected;
            total.affinity_hits += s.affinity_hits;
            total.affinity_misses += s.affinity_misses;
        }
        total
    }

    /// Read access to a shard's engine (tests, stats printing).
    pub fn engine(&self, device: usize) -> &Engine {
        &self.shards[device].engine
    }

    /// Serializes every shard's resident plans into one blob (the same
    /// format as [`Engine::export_plans`]).
    pub fn export_plans(&self) -> Vec<u8> {
        let shard_blobs: Vec<Vec<u8>> = self
            .shards
            .iter()
            .map(|s| s.engine.export_plans())
            .collect();
        let mut entries: Vec<&[u8]> = Vec::new();
        for blob in &shard_blobs {
            // Our own exports always split cleanly.
            if let Ok(parts) = crate::persist::split_entries(blob) {
                entries.extend(parts);
            }
        }
        crate::persist::join_entries(&entries)
    }

    /// Imports a plan blob, routing each entry to its desc's home shard
    /// — a warm pool boots exactly like N warm engines. Entries whose
    /// desc cannot be decoded (corruption) go to shard 0, whose import
    /// rejects and counts them; fail-closed semantics are per entry,
    /// identical to [`Engine::import_plans`].
    ///
    /// # Errors
    /// [`PersistError`] when the blob structure itself is unusable.
    pub fn import_plans(&mut self, bytes: &[u8]) -> Result<ImportSummary, PersistError> {
        let entries = crate::persist::split_entries(bytes)?;
        let mut per_shard: Vec<Vec<&[u8]>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for entry in entries {
            let shard = crate::persist::entry_desc(entry)
                .map(|d| self.route(&d))
                .unwrap_or(0);
            per_shard[shard].push(entry);
        }
        let mut total = ImportSummary::default();
        for (s, entries) in per_shard.iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let blob = crate::persist::join_entries(entries);
            let summary = self.shards[s].engine.import_plans(&blob)?;
            total.imported += summary.imported;
            total.rejected += summary.rejected;
            total.already_resident += summary.already_resident;
        }
        Ok(total)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::strategy::{ExecConfig, Strategy};
    use vitbit_tensor::refgemm::gemm_i8_i32;
    use vitbit_tensor::{gen, Matrix};

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Matrix<i8>, Matrix<i8>) {
        (
            gen::uniform_i8(m, k, -32, 31, seed),
            gen::uniform_i8(k, n, -32, 31, seed + 1),
        )
    }

    fn desc_for(g: &Gpu, s: Strategy, n: usize, weight: Option<u64>) -> GemmDesc {
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        GemmDesc::from_exec(s, &cfg, g, 16, 32, n, weight)
    }

    #[test]
    fn async_drain_matches_sequential_in_ticket_order() {
        let (a, b) = mats(16, 32, 320, 51);
        let (_, b2) = mats(16, 32, 320, 53);

        // Sequential reference.
        let mut g1 = gpu();
        let mut e1 = Engine::new();
        let d = desc_for(&g1, Strategy::VitBit, 320, None);
        let id = e1.prepare(d).unwrap();
        let seq: Vec<_> = [&b, &b2, &b, &b2]
            .iter()
            .map(|bb| e1.execute(&mut g1, id, &a, bb).unwrap())
            .collect();

        // Async: same requests, same order.
        let mut g2 = gpu();
        let mut e2 = Engine::new();
        let d2 = desc_for(&g2, Strategy::VitBit, 320, None);
        let tickets: Vec<_> = [&b, &b2, &b, &b2]
            .iter()
            .map(|bb| e2.submit(d2, a.clone(), (*bb).clone()).unwrap())
            .collect();
        assert_eq!(e2.pending_count(), 4);
        let done = e2.drain(&mut g2);
        assert_eq!(e2.pending_count(), 0);
        assert_eq!(done.len(), 4);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.ticket, tickets[i], "ticket order");
            let out = &c.result.as_ref().unwrap().out;
            assert_eq!(out.c, seq[i].c, "request {i}: outputs");
            assert_eq!(out.stats, seq[i].stats, "request {i}: stats");
        }
    }

    #[test]
    fn submit_fails_fast_on_shape_mismatch() {
        let g = gpu();
        let mut e = Engine::new();
        let d = desc_for(&g, Strategy::Tc, 128, None);
        let (a, b) = mats(16, 32, 256, 55); // wrong N
        assert!(matches!(
            e.submit(d, a, b),
            Err(EngineError::ShapeMismatch { .. })
        ));
        assert_eq!(e.pending_count(), 0);
    }

    #[test]
    fn pool_routes_by_affinity_and_stays_bit_identical() {
        let cfg = OrinConfig::test_small();
        let refgpu = gpu();
        let descs: Vec<GemmDesc> = [128usize, 320, 640]
            .iter()
            .flat_map(|&n| {
                [Strategy::Tc, Strategy::VitBit]
                    .into_iter()
                    .map(move |s| (s, n))
            })
            .map(|(s, n)| desc_for(&refgpu, s, n, None))
            .collect();
        for devices in [1usize, 2, 4] {
            let mut pool = GpuPool::new(devices, &cfg, 64 << 20);
            // Reference: one dedicated sequential machine per shard, fed
            // exactly the stream the router sends there — sharding must
            // equal N independent sequential engines, bit for bit.
            let mut refs: Vec<(Gpu, Engine)> =
                (0..devices).map(|_| (gpu(), Engine::new())).collect();
            for pass in 0..2u64 {
                for d in &descs {
                    let (aa, bb) = mats(d.m, d.k, d.n, 57 + d.n as u64 + pass);
                    let home = pool.route(d);
                    let got = pool.run(*d, &aa, &bb).unwrap();
                    let (g, e) = &mut refs[home];
                    let id = e.prepare(*d).unwrap();
                    let want = e.execute(g, id, &aa, &bb).unwrap();
                    assert_eq!(got.c, want.c, "{:?} n={} x{}", d.strategy, d.n, devices);
                    assert_eq!(
                        got.stats, want.stats,
                        "{:?} n={} x{}",
                        d.strategy, d.n, devices
                    );
                }
            }
            let stats = pool.stats();
            assert_eq!(stats.affinity_misses, descs.len() as u64);
            assert_eq!(stats.affinity_hits, descs.len() as u64);
            assert!((stats.affinity_hit_rate() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn pool_async_merges_ticket_ordered_completions() {
        let cfg = OrinConfig::test_small();
        let mut pool = GpuPool::new(2, &cfg, 64 << 20);
        let refgpu = gpu();
        let d1 = desc_for(&refgpu, Strategy::Tc, 128, None);
        let d2 = desc_for(&refgpu, Strategy::VitBit, 320, None);
        let (a1, b1) = mats(16, 32, 128, 61);
        let (a2, b2) = mats(16, 32, 320, 63);
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(pool.submit(d1, a1.clone(), b1.clone()).unwrap());
            tickets.push(pool.submit(d2, a2.clone(), b2.clone()).unwrap());
        }
        assert_eq!(pool.pending_count(), 6);
        let done = pool.drain();
        assert_eq!(pool.pending_count(), 0);
        assert_eq!(done.len(), 6);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.ticket, tickets[i], "global ticket order preserved");
            let out = &c.result.as_ref().unwrap().out;
            let want = if i % 2 == 0 {
                gemm_i8_i32(&a1, &b1)
            } else {
                gemm_i8_i32(&a2, &b2)
            };
            assert_eq!(out.c, want);
        }
    }

    #[test]
    fn pool_persistence_round_trips_to_the_right_shards() {
        let cfg = OrinConfig::test_small();
        let mut warm = GpuPool::new(3, &cfg, 64 << 20);
        let refgpu = gpu();
        let descs: Vec<GemmDesc> = [128usize, 320, 640, 960]
            .iter()
            .map(|&n| desc_for(&refgpu, Strategy::VitBit, n, None))
            .collect();
        for d in &descs {
            let (a, b) = mats(d.m, d.k, d.n, 71);
            warm.run(*d, &a, &b).unwrap();
        }
        let blob = warm.export_plans();

        let mut cold = GpuPool::new(3, &cfg, 64 << 20);
        let summary = cold.import_plans(&blob).unwrap();
        assert_eq!(summary.imported, descs.len() as u64);
        assert_eq!(summary.rejected, 0);
        // Every desc now affinity-hits its home shard with zero build.
        for d in &descs {
            let (a, b) = mats(d.m, d.k, d.n, 73);
            let out = cold.run(*d, &a, &b).unwrap();
            assert_eq!(out.c, gemm_i8_i32(&a, &b));
            assert_eq!(out.stats.plan_build_cycles, 0, "warm boot: no build");
        }
        let stats = cold.stats();
        assert_eq!(stats.affinity_hits, descs.len() as u64);
        assert_eq!(stats.affinity_misses, 0);
        assert_eq!(stats.plan_build_units, 0);
        assert_eq!(stats.verifier_invocations, 0);
    }
}
