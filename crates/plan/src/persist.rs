//! Plan-cache persistence: a hermetic binary snapshot of the engine's
//! resolved plans, so a cold replica boots with **zero policy
//! resolution and zero re-verification**.
//!
//! What is persisted per plan:
//!
//! * the full [`GemmDesc`] key;
//! * the plan body — `Direct`, or the resolved geometry scalars
//!   ([`FusedPlanSpec`]) of a fused plan. Programs and dispatch order
//!   are *not* persisted: [`materialize_fused`] re-emits them
//!   mechanically from the scalars (codegen, not policy resolution);
//! * the [`PlanProof`] attached at prepare time, when the desc asked
//!   for verification.
//!
//! What is deliberately **not** persisted: staged weight operands (they
//! are value-dependent — staging is execute work, re-done on first use)
//! and replay entries (they are machine-state-dependent).
//!
//! # Fail-closed rules
//!
//! Every entry carries its own FNV-1a checksum. A stale version, a
//! checksum mismatch, a malformed field, a geometry that fails
//! [`materialize_fused`]'s invariants, or a verified desc arriving
//! without its proof — each rejects *that entry* (counted in
//! [`EngineStats::plans_rejected`]) and the desc falls back to a live
//! [`Engine::prepare`] on next use. Corruption can cost warm-boot time,
//! never correctness.
//!
//! # Format
//!
//! Little-endian throughout.
//!
//! ```text
//! "VBPC" | version: u32 | count: u32 | entry*
//! entry := len: u32 | fnv1a(payload): u64 | payload[len]
//! ```
//!
//! [`EngineStats::plans_rejected`]: crate::EngineStats::plans_rejected

use crate::engine::{fnv1a, Engine, GemmDesc, GemmPlan, PlanBody, PlanProof, SimKnobs};
use crate::strategy::Strategy;
use std::sync::Arc;
use vitbit_core::policy::{PackPolicy, PackSpec};
use vitbit_core::ratio::CoreRatio;
use vitbit_kernels::gemm::{materialize_fused, FusedGeomSpec, FusedMode, FusedPlanSpec};
use vitbit_sim::{SchedPolicy, SimMode};

/// File magic: "VitBit Plan Cache".
pub const MAGIC: [u8; 4] = *b"VBPC";
/// Current format version; older or newer blobs fail closed.
/// v2 added [`GemmDesc::sched`] to the desc encoding.
pub const VERSION: u32 = 2;

/// Outcome of one [`Engine::import_plans`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportSummary {
    /// Entries admitted: fully materialized plans with zero pending
    /// build work.
    pub imported: u64,
    /// Entries rejected (checksum, decode, invariant or proof failure);
    /// each falls back to a live `prepare` on next use.
    pub rejected: u64,
    /// Entries skipped because the engine already holds their desc.
    pub already_resident: u64,
}

/// Why a persisted blob was rejected wholesale (before any entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The blob's version is not [`VERSION`].
    BadVersion(u32),
    /// The blob ended mid-structure.
    Truncated,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => f.write_str("not a plan-cache blob (bad magic)"),
            PersistError::BadVersion(v) => {
                write!(f, "unsupported plan-cache version {v} (want {VERSION})")
            }
            PersistError::Truncated => f.write_str("plan-cache blob truncated"),
        }
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------- writer

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn pack_spec(&mut self, s: &PackSpec) {
        self.u32(s.bitwidth);
        self.u32(s.weight_bitwidth);
        self.u32(s.lanes);
        self.u32(s.lane_bits);
        self.u8(match s.policy {
            PackPolicy::Paper => 0,
            PackPolicy::Guarded => 1,
        });
    }

    fn desc(&mut self, d: &GemmDesc) {
        self.u64(d.m as u64);
        self.u64(d.k as u64);
        self.u64(d.n as u64);
        self.u8(strategy_tag(d.strategy));
        self.u32(d.bitwidth);
        self.pack_spec(&d.spec);
        match d.ratio {
            None => self.u8(0),
            Some(r) => {
                self.u8(1);
                self.u32(r.tc);
                self.u32(r.cuda);
            }
        }
        self.bool(d.adaptive);
        match d.weight {
            None => self.u8(0),
            Some(w) => {
                self.u8(1);
                self.u64(w);
            }
        }
        self.bool(d.abft);
        self.bool(d.verify);
        self.u8(match d.knobs.sched {
            SchedPolicy::Gto => 0,
            SchedPolicy::Lrr => 1,
        });
        self.u8(match d.knobs.sim_mode {
            SimMode::Serial => 0,
            SimMode::Parallel => 1,
        });
        self.bool(d.knobs.fast_forward);
        self.bool(d.sched);
    }

    fn fused_spec(&mut self, s: &FusedPlanSpec) {
        self.u64(s.m as u64);
        self.u64(s.k as u64);
        self.u64(s.n as u64);
        match s.mode {
            FusedMode::Tacker => self.u8(0),
            FusedMode::TcIcFc => self.u8(1),
            FusedMode::VitBit(spec) => {
                self.u8(2);
                self.pack_spec(&spec);
            }
        }
        self.u32(s.ratio.tc);
        self.u32(s.ratio.cuda);
        match &s.geom {
            None => self.u8(0),
            Some(g) => {
                self.u8(1);
                self.u32(g.lanes);
                self.u64(g.n1_raw);
                self.u64(g.n2_raw);
                self.u64(g.mp);
                self.u64(g.kp);
                self.u64(g.n1p);
                self.u64(g.n2p);
                self.u64(g.n3p);
                self.u32(g.role_warps);
                self.u32(g.k_splits);
            }
        }
    }

    fn proof(&mut self, p: Option<&PlanProof>) {
        match p {
            None => self.u8(0),
            Some(p) => {
                self.u8(1);
                self.string(&p.subject);
                self.u32(p.programs.len() as u32);
                for (name, ops) in &p.programs {
                    self.string(name);
                    self.u64(*ops);
                }
            }
        }
    }
}

fn strategy_tag(s: Strategy) -> u8 {
    match s {
        Strategy::Tc => 0,
        Strategy::Ic => 1,
        Strategy::Fc => 2,
        Strategy::IcFc => 3,
        Strategy::Tacker => 4,
        Strategy::TcIcFc => 5,
        Strategy::VitBit => 6,
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    fn size(&mut self) -> Option<usize> {
        self.u64()?.try_into().ok()
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let s = std::str::from_utf8(self.bytes(len)?).ok()?;
        Some(s.to_string())
    }

    fn pack_spec(&mut self) -> Option<PackSpec> {
        Some(PackSpec {
            bitwidth: self.u32()?,
            weight_bitwidth: self.u32()?,
            lanes: self.u32()?,
            lane_bits: self.u32()?,
            policy: match self.u8()? {
                0 => PackPolicy::Paper,
                1 => PackPolicy::Guarded,
                _ => return None,
            },
        })
    }

    fn desc(&mut self) -> Option<GemmDesc> {
        Some(GemmDesc {
            m: self.size()?,
            k: self.size()?,
            n: self.size()?,
            strategy: match self.u8()? {
                0 => Strategy::Tc,
                1 => Strategy::Ic,
                2 => Strategy::Fc,
                3 => Strategy::IcFc,
                4 => Strategy::Tacker,
                5 => Strategy::TcIcFc,
                6 => Strategy::VitBit,
                _ => return None,
            },
            bitwidth: self.u32()?,
            spec: self.pack_spec()?,
            ratio: match self.u8()? {
                0 => None,
                1 => Some(CoreRatio {
                    tc: self.u32()?,
                    cuda: self.u32()?,
                }),
                _ => return None,
            },
            adaptive: self.bool()?,
            weight: match self.u8()? {
                0 => None,
                1 => Some(self.u64()?),
                _ => return None,
            },
            abft: self.bool()?,
            verify: self.bool()?,
            knobs: SimKnobs {
                sched: match self.u8()? {
                    0 => SchedPolicy::Gto,
                    1 => SchedPolicy::Lrr,
                    _ => return None,
                },
                sim_mode: match self.u8()? {
                    0 => SimMode::Serial,
                    1 => SimMode::Parallel,
                    _ => return None,
                },
                fast_forward: self.bool()?,
            },
            sched: self.bool()?,
        })
    }

    fn fused_spec(&mut self) -> Option<FusedPlanSpec> {
        Some(FusedPlanSpec {
            m: self.size()?,
            k: self.size()?,
            n: self.size()?,
            mode: match self.u8()? {
                0 => FusedMode::Tacker,
                1 => FusedMode::TcIcFc,
                2 => FusedMode::VitBit(self.pack_spec()?),
                _ => return None,
            },
            ratio: CoreRatio {
                tc: self.u32()?,
                cuda: self.u32()?,
            },
            geom: match self.u8()? {
                0 => None,
                1 => Some(FusedGeomSpec {
                    lanes: self.u32()?,
                    n1_raw: self.u64()?,
                    n2_raw: self.u64()?,
                    mp: self.u64()?,
                    kp: self.u64()?,
                    n1p: self.u64()?,
                    n2p: self.u64()?,
                    n3p: self.u64()?,
                    role_warps: self.u32()?,
                    k_splits: self.u32()?,
                }),
                _ => return None,
            },
        })
    }

    fn proof(&mut self) -> Option<Option<PlanProof>> {
        match self.u8()? {
            0 => Some(None),
            1 => {
                let subject = self.string()?;
                let count = self.u32()? as usize;
                let mut programs = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    programs.push((self.string()?, self.u64()?));
                }
                Some(Some(PlanProof { subject, programs }))
            }
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// --------------------------------------------------------- entry payload

/// One decoded entry, pre-validation.
struct Decoded {
    desc: GemmDesc,
    spec: Option<FusedPlanSpec>,
    proof: Option<PlanProof>,
}

fn encode_entry(plan: &GemmPlan) -> Vec<u8> {
    let mut w = Writer::new();
    w.desc(&plan.desc);
    match &plan.body {
        PlanBody::Direct => w.u8(0),
        PlanBody::Fused { plan: fplan, .. } => {
            w.u8(1);
            w.fused_spec(&fplan.geom_spec());
        }
    }
    w.proof(plan.proof.as_ref());
    w.buf
}

fn decode_entry(payload: &[u8]) -> Option<Decoded> {
    let mut r = Reader::new(payload);
    let desc = r.desc()?;
    let spec = match r.u8()? {
        0 => None,
        1 => Some(r.fused_spec()?),
        _ => return None,
    };
    let proof = r.proof()?;
    if !r.done() {
        // Trailing bytes mean the payload is not what the checksum
        // claims it is structurally — reject.
        return None;
    }
    Some(Decoded { desc, spec, proof })
}

/// Validates a decoded entry against the engine's own planning policy
/// and materializes its body. `None` = reject (fail closed).
fn materialize(d: &Decoded) -> Option<(GemmDesc, PlanBody, Option<PlanProof>)> {
    // A verified desc must arrive with its proof: admitting it without
    // one would silently drop the verification guarantee.
    if d.desc.verify && d.proof.is_none() {
        return None;
    }
    let body = match (d.desc.fused_mode(), &d.spec) {
        (None, None) => PlanBody::Direct,
        (Some(mode), Some(spec)) => {
            // The persisted scalars must answer exactly this desc: same
            // shape, same kernel family, same ratio the engine would
            // resolve today.
            let ratio = d.desc.ratio.unwrap_or_else(|| mode.default_ratio());
            if spec.m != d.desc.m
                || spec.k != d.desc.k
                || spec.n != d.desc.n
                || spec.mode != mode
                || spec.ratio != ratio
            {
                return None;
            }
            let plan = materialize_fused(spec).ok()?;
            PlanBody::Fused {
                plan: Arc::new(plan),
                staged: None,
            }
        }
        // Body family disagrees with the desc's strategy.
        _ => return None,
    };
    Some((d.desc, body, d.proof.clone()))
}

/// Splits a blob into raw entry slices (`len | checksum | payload`),
/// validating only the outer structure. Used by the pool to route
/// entries to shards without fully decoding them here.
pub(crate) fn split_entries(bytes: &[u8]) -> Result<Vec<&[u8]>, PersistError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4) != Some(&MAGIC) {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32().ok_or(PersistError::Truncated)?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let count = r.u32().ok_or(PersistError::Truncated)?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let start = r.pos;
        let len = r.u32().ok_or(PersistError::Truncated)? as usize;
        r.bytes(8).ok_or(PersistError::Truncated)?; // checksum
        r.bytes(len).ok_or(PersistError::Truncated)?; // payload
        entries.push(&bytes[start..r.pos]);
    }
    Ok(entries)
}

/// Reassembles raw entry slices into a well-formed blob.
pub(crate) fn join_entries(entries: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(e);
    }
    out
}

/// The desc of a raw entry slice, when its checksum and encoding hold
/// (routing only — full validation happens at import).
pub(crate) fn entry_desc(entry: &[u8]) -> Option<GemmDesc> {
    let mut r = Reader::new(entry);
    let len = r.u32()? as usize;
    let want = r.u64()?;
    let payload = r.bytes(len)?;
    if fnv1a(payload) != want {
        return None;
    }
    Reader::new(payload).desc()
}

impl Engine {
    /// Serializes every resident plan (desc, resolved geometry, proof)
    /// into a self-checking binary blob. Staged weights and replay state
    /// are not included — they are value- and machine-dependent.
    pub fn export_plans(&self) -> Vec<u8> {
        let plans: Vec<&GemmPlan> = self.plans_iter().collect();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(plans.len() as u32).to_le_bytes());
        for plan in plans {
            let payload = encode_entry(plan);
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Admits plans from a blob produced by [`Engine::export_plans`].
    /// Imported plans are fully materialized — their next `prepare` is a
    /// cache hit with **zero** policy resolution and **zero** verifier
    /// invocations; their first execute does no plan-build work (weight
    /// staging, being value-dependent, still happens once).
    ///
    /// Rejected entries (checksum, decode, invariant, missing proof) are
    /// counted and skipped — the desc falls back to live `prepare`.
    ///
    /// # Errors
    /// [`PersistError`] when the blob itself is unusable (magic,
    /// version, truncation). Entries admitted before a truncation point
    /// remain admitted.
    pub fn import_plans(&mut self, bytes: &[u8]) -> Result<ImportSummary, PersistError> {
        let mut r = Reader::new(bytes);
        if r.bytes(4) != Some(&MAGIC) {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32().ok_or(PersistError::Truncated)?;
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let count = r.u32().ok_or(PersistError::Truncated)?;
        let mut summary = ImportSummary::default();
        // Descs admitted by *this* call: a well-formed export never
        // repeats a desc, so a duplicate marks a spliced or replayed
        // blob — rejected, not silently merged.
        let mut seen: std::collections::HashSet<GemmDesc> = std::collections::HashSet::new();
        for _ in 0..count {
            let len = r.u32().ok_or(PersistError::Truncated)? as usize;
            let want = r.u64().ok_or(PersistError::Truncated)?;
            let payload = r.bytes(len).ok_or(PersistError::Truncated)?;
            if fnv1a(payload) != want {
                summary.rejected += 1;
                self.stats_mut().plans_rejected += 1;
                continue;
            }
            let Some(decoded) = decode_entry(payload) else {
                summary.rejected += 1;
                self.stats_mut().plans_rejected += 1;
                continue;
            };
            if !seen.insert(decoded.desc) {
                summary.rejected += 1;
                self.stats_mut().plans_rejected += 1;
                continue;
            }
            if self.has_plan(&decoded.desc) {
                summary.already_resident += 1;
                continue;
            }
            let Some((desc, mut body, proof)) = materialize(&decoded) else {
                summary.rejected += 1;
                self.stats_mut().plans_rejected += 1;
                continue;
            };
            // Scheduling is a deterministic local pass, not persisted
            // state: re-derive it here so an imported plan launches the
            // same programs a live `prepare` of its desc would. The
            // fail-closed gate applies as usual (no installed program
            // check on this replica = plans serve unscheduled).
            if desc.sched {
                if let PlanBody::Fused { plan, .. } = &mut body {
                    self.sched_fused(&desc, Arc::make_mut(plan));
                }
            }
            self.admit_plan(GemmPlan::imported(desc, body, proof));
            summary.imported += 1;
            self.stats_mut().plans_imported += 1;
        }
        Ok(summary)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::engine::PlanVerifier;
    use crate::strategy::ExecConfig;
    use vitbit_sim::{Gpu, OrinConfig};
    use vitbit_tensor::refgemm::gemm_i8_i32;
    use vitbit_tensor::{gen, Matrix};

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Matrix<i8>, Matrix<i8>) {
        (
            gen::uniform_i8(m, k, -32, 31, seed),
            gen::uniform_i8(k, n, -32, 31, seed + 1),
        )
    }

    /// A warm engine holding one plan per strategy family (direct, fused
    /// fallback-free, verified).
    fn warm_engine(g: &Gpu) -> (Engine, Vec<GemmDesc>) {
        let mut e = Engine::new().with_verifier(PlanVerifier::new(|d: &GemmDesc| {
            Ok(PlanProof {
                subject: format!("{:?} {}x{}x{}", d.strategy, d.m, d.k, d.n),
                programs: vec![("cuda_int".into(), 64)],
            })
        }));
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let mut descs = Vec::new();
        for s in [Strategy::Tc, Strategy::Tacker, Strategy::VitBit] {
            let d = GemmDesc::from_exec(s, &cfg, g, 16, 32, 320, None);
            e.prepare(d).expect("prepare");
            descs.push(d);
        }
        let mut vcfg = cfg;
        vcfg.verify_plans = true;
        let dv = GemmDesc::from_exec(Strategy::VitBit, &vcfg, g, 24, 32, 640, None);
        e.prepare(dv).expect("verified prepare");
        descs.push(dv);
        (e, descs)
    }

    #[test]
    fn roundtrip_boots_cold_replica_with_zero_build_and_zero_verification() {
        let g = gpu();
        let (warm, descs) = warm_engine(&g);
        let blob = warm.export_plans();

        // Cold replica: no verifier installed at all — imported proofs
        // stand on their own.
        let mut cold = Engine::new();
        let summary = cold.import_plans(&blob).expect("import");
        assert_eq!(summary.imported, descs.len() as u64);
        assert_eq!(summary.rejected, 0);
        assert_eq!(cold.plan_count(), descs.len());
        let s = cold.stats();
        assert_eq!(s.plans_imported, descs.len() as u64);
        assert_eq!(s.verifier_invocations, 0, "zero re-verification");
        assert_eq!(s.plan_build_units, 0, "zero policy resolution");

        // Every imported desc is a cache hit; executing does no build
        // work (activation descs have nothing left to stage as build).
        let mut gm = gpu();
        for d in &descs {
            let id = cold.prepare(*d).expect("warm prepare");
            let (a, b) = mats(d.m, d.k, d.n, 41);
            let out = cold.execute(&mut gm, id, &a, &b).expect("execute");
            assert_eq!(out.c, gemm_i8_i32(&a, &b), "{:?}", d.strategy);
            assert_eq!(out.stats.plan_build_cycles, 0, "{:?}", d.strategy);
        }
        assert_eq!(cold.stats().plan_cache_misses, 0);
        assert_eq!(cold.stats().plan_cache_hits, descs.len() as u64);
        // The verified plan carries its proof across the boundary.
        let dv = descs.last().unwrap();
        let id = cold.prepare(*dv).expect("prepare");
        let proof = cold.plan(id).unwrap().proof().expect("proof persisted");
        assert_eq!(proof.programs, vec![("cuda_int".to_string(), 64)]);
    }

    #[test]
    fn corrupt_entries_fail_closed_to_live_prepare() {
        let g = gpu();
        let (warm, descs) = warm_engine(&g);
        let blob = warm.export_plans();

        // Flip one byte in every entry's payload region: all rejected.
        let mut evil = blob.clone();
        for i in (16..evil.len()).step_by(7) {
            evil[i] ^= 0x5a;
        }
        let mut cold = Engine::new();
        let summary = cold.import_plans(&evil);
        // Either the structure broke (Err) or entries were rejected —
        // never a silently admitted corrupt plan.
        if let Ok(s) = summary {
            assert_eq!(s.imported, 0, "corrupt entries must not be admitted");
            assert!(s.rejected > 0);
        }

        // A targeted single-byte flip inside the first entry's payload:
        // that entry is rejected, the rest import, and the rejected desc
        // still works through a live prepare.
        let mut one_bad = blob.clone();
        one_bad[16] ^= 1; // first byte of the first entry's payload
        let mut cold2 = Engine::new();
        let s2 = cold2.import_plans(&one_bad).expect("blob structure intact");
        assert_eq!(s2.rejected, 1);
        assert_eq!(s2.imported, descs.len() as u64 - 1);
        assert_eq!(cold2.stats().plans_rejected, 1);
        let mut gm = gpu();
        // descs[0] (Tc) was the rejected entry; live prepare covers it.
        let id = cold2.prepare(descs[0]).expect("live prepare");
        let (a, b) = mats(16, 32, 320, 43);
        let out = cold2.execute(&mut gm, id, &a, &b).expect("execute");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn blob_level_failures_are_typed() {
        let g = gpu();
        let (warm, _) = warm_engine(&g);
        let blob = warm.export_plans();
        let mut e = Engine::new();
        assert_eq!(e.import_plans(b"nope"), Err(PersistError::BadMagic));
        let mut wrong_ver = blob.clone();
        wrong_ver[4] = 0xff;
        assert!(matches!(
            e.import_plans(&wrong_ver),
            Err(PersistError::BadVersion(_))
        ));
        let truncated = &blob[..blob.len() - 3];
        assert_eq!(e.import_plans(truncated), Err(PersistError::Truncated));
        assert_eq!(e.plan_count(), 3, "entries before the cut were admitted");
    }

    #[test]
    fn tampered_geometry_is_rejected_by_materialize_invariants() {
        let g = gpu();
        let mut e = Engine::new();
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        let d = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, None);
        e.prepare(d).expect("prepare");
        let blob = e.export_plans();

        // Walk the payload bytes, flipping one at a time; count how many
        // flips survive to admission. Structural decoders catch most;
        // materialize_fused's invariants must catch geometry lies; the
        // checksum catches everything here because the payload changed.
        let mut admitted = 0;
        for i in 16..blob.len() {
            let mut t = blob.clone();
            t[i] ^= 0x10;
            let mut cold = Engine::new();
            if let Ok(s) = cold.import_plans(&t) {
                admitted += s.imported;
            }
        }
        assert_eq!(
            admitted, 0,
            "no single-byte payload tamper may survive the checksum"
        );
    }

    #[test]
    fn verified_desc_without_proof_is_rejected() {
        // Hand-build a blob whose entry claims verify but carries no
        // proof (as if persisted by a tampering writer with a fixed-up
        // checksum).
        let g = gpu();
        let mut cfg = ExecConfig::int6();
        cfg.adaptive = false;
        cfg.verify_plans = true;
        let d = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 128, None);
        let plan = GemmPlan::imported(d, PlanBody::Direct, None);
        let payload = encode_entry(&plan);
        let mut blob = Vec::new();
        blob.extend_from_slice(&MAGIC);
        blob.extend_from_slice(&VERSION.to_le_bytes());
        blob.extend_from_slice(&1u32.to_le_bytes());
        blob.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        blob.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        blob.extend_from_slice(&payload);
        let mut e = Engine::new();
        let s = e.import_plans(&blob).expect("import");
        assert_eq!(s.imported, 0);
        assert_eq!(s.rejected, 1, "verify-without-proof fails closed");
    }
}
