//! The Table-3 comparison groups as an executable strategy, plus the
//! legacy one-shot entry points as `#[deprecated]` shims over the
//! [`Engine`].

use crate::engine::{Engine, GemmDesc, SimKnobs};
use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::CoreRatio;
use vitbit_kernels::elementwise::EwVariant;
use vitbit_kernels::gemm::{GemmOut, WeightCtx};
use vitbit_sim::Gpu;
use vitbit_tensor::Matrix;

/// One row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Tensor cores only (baseline for Tensor-core kernels).
    Tc,
    /// INT CUDA cores only (baseline for CUDA-core kernels).
    Ic,
    /// FP CUDA cores only (type-cast inputs).
    Fc,
    /// INT + FP CUDA cores simultaneously.
    IcFc,
    /// Tacker: Tensor cores + INT CUDA cores fused.
    Tacker,
    /// Tensor + INT + FP CUDA cores fused, no packing.
    TcIcFc,
    /// VitBit: packing plus full three-way co-scheduling.
    VitBit,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub const ALL: [Strategy; 7] = [
        Strategy::Tc,
        Strategy::Ic,
        Strategy::Fc,
        Strategy::IcFc,
        Strategy::Tacker,
        Strategy::TcIcFc,
        Strategy::VitBit,
    ];

    /// The fused simultaneous-execution methods of Figure 5.
    pub const FIG5: [Strategy; 4] = [
        Strategy::Tc,
        Strategy::Tacker,
        Strategy::TcIcFc,
        Strategy::VitBit,
    ];

    /// Name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Tc => "TC",
            Strategy::Ic => "IC",
            Strategy::Fc => "FC",
            Strategy::IcFc => "IC+FC",
            Strategy::Tacker => "Tacker",
            Strategy::TcIcFc => "TC+IC+FC",
            Strategy::VitBit => "VitBit",
        }
    }

    /// Table-3 description.
    pub fn description(&self) -> &'static str {
        match self {
            Strategy::Tc => "Execution of Tensor cores only (baseline for Tensor core kernels)",
            Strategy::Ic => "Execution of INT cores only (baseline for CUDA core kernels)",
            Strategy::Fc => "Execution of FP cores only by converting INT inputs to FP",
            Strategy::IcFc => "Simultaneous execution of INT and FP CUDA cores",
            Strategy::Tacker => "Simultaneous execution of Tensor cores and INT CUDA cores",
            Strategy::TcIcFc => "Simultaneous execution of Tensor cores, INT and FP CUDA cores",
            Strategy::VitBit => {
                "INT packing with simultaneous execution of Tensor cores, INT and FP CUDA cores"
            }
        }
    }

    /// Kernel classes this method is evaluated on (Table 3's "T"/"C" tags).
    pub fn applicability(&self) -> &'static str {
        match self {
            Strategy::Tc | Strategy::Tacker | Strategy::TcIcFc => "T",
            Strategy::Ic | Strategy::Fc | Strategy::IcFc => "C",
            Strategy::VitBit => "T,C",
        }
    }
}

/// Shared execution parameters: the value bitwidth and the packing spec.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Signed code bitwidth of the quantized model (headline: 6).
    pub bitwidth: u32,
    /// Packing spec used by VitBit paths.
    pub spec: PackSpec,
    /// Tensor:CUDA column ratio for the fused methods (`None` = each
    /// method's default from its measured study value).
    pub ratio: Option<CoreRatio>,
    /// Measure-and-choose dispatch: per GEMM shape, fused methods measure
    /// both the fused kernel and the Tensor-core kernel once and keep the
    /// faster (the paper's ratio-calibration methodology generalized to
    /// its limit case m = infinity). Honored by [`Engine::execute`] when
    /// the desc asks for it, and by the tuned legacy shims.
    pub adaptive: bool,
    /// Verify every GEMM output with ABFT row/column checksums and let
    /// the engine's recovery ladder absorb detected corruption. Off by
    /// default: the checksums cost simulated cycles
    /// (`KernelStats::abft_check_cycles`) and the fault-free pipelines
    /// don't need them.
    pub abft: bool,
    /// Statically verify every plan at [`Engine::prepare`] time: lane
    /// safety and shared-memory hazard freedom of the emitted programs
    /// (see the `vitbit-verify` crate). Requires a verifier installed
    /// with [`Engine::set_verifier`]; prepare fails closed with
    /// [`crate::EngineError::Unverified`] otherwise. Off by default.
    pub verify_plans: bool,
    /// Statically reschedule every emitted kernel program with
    /// `vitbit-sched` before launch: per-block list scheduling that
    /// interleaves independent INT/FP/LSU instructions for pipe overlap.
    /// Fail-closed — a scheduled program is adopted only when the
    /// engine's installed [`crate::ProgramCheck`] re-proves it; otherwise
    /// the program launches exactly as emitted. Off by default.
    pub schedule_kernels: bool,
}

impl ExecConfig {
    /// Guarded-policy config for a given bitwidth (same-width weights).
    ///
    /// # Panics
    /// Panics for bitwidths the packing policy rejects.
    pub fn guarded(bitwidth: u32) -> Self {
        Self {
            bitwidth,
            spec: PackSpec::guarded(bitwidth, bitwidth).expect("valid bitwidth"),
            ratio: None,
            adaptive: true,
            abft: false,
            verify_plans: false,
            schedule_kernels: false,
        }
    }

    /// The headline configuration: INT6 codes (Figure 3(b) packs two per
    /// register with guard bits that keep accumulation exact).
    pub fn int6() -> Self {
        Self::guarded(6)
    }
}

/// Per-shape winner cache for adaptive fused dispatch — a caller-owned
/// view of the engine's winner map, kept for the legacy tuned entry
/// points (the [`Engine`] owns this state itself).
#[derive(Debug, Default)]
pub struct GemmTuner {
    pub(crate) choices: crate::engine::AdaptiveChoices,
}

impl GemmTuner {
    /// Empty tuner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shapes tuned so far.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True when nothing was tuned yet.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

/// The one-shot composition every legacy shim reduces to: build a fresh
/// engine, lend it the caller's weight cache and tuner state, run once.
fn one_shot(
    strategy: Strategy,
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    cfg: &ExecConfig,
    mut tuner: Option<&mut GemmTuner>,
    mut weight: WeightCtx<'_>,
) -> GemmOut {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dims");
    let mut engine = Engine::new();
    let desc = GemmDesc {
        m: a.rows(),
        k: a.cols(),
        n: b.cols(),
        strategy,
        bitwidth: cfg.bitwidth,
        spec: cfg.spec,
        ratio: cfg.ratio,
        // The untuned legacy entry points never measured, whatever the
        // config said; only the `_tuned` ones honored `adaptive`.
        adaptive: tuner.is_some() && cfg.adaptive,
        weight: weight.as_ref().map(|(_, id)| *id),
        abft: cfg.abft,
        // The legacy one-shot engine has no verifier installed; honoring
        // `verify_plans` here would fail every call closed.
        verify: false,
        // Same reasoning: scheduling is fail-closed on a program check the
        // one-shot engine never installs, so it would always decline.
        sched: false,
        knobs: SimKnobs::of(gpu),
    };
    if let Some(t) = tuner.as_deref_mut() {
        std::mem::swap(&mut t.choices, engine.choices_mut());
    }
    let run = |engine: &mut Engine, gpu: &mut Gpu| {
        engine
            .run(gpu, desc, a, b)
            .expect("one-shot desc is prepared in the same call")
    };
    let out = match weight.as_mut() {
        Some((cache, _)) => {
            std::mem::swap(*cache, engine.weights_mut());
            let out = run(&mut engine, gpu);
            std::mem::swap(*cache, engine.weights_mut());
            out
        }
        None => run(&mut engine, gpu),
    };
    if let Some(t) = tuner {
        std::mem::swap(&mut t.choices, engine.choices_mut());
    }
    out
}

impl Strategy {
    /// Runs a GEMM under this strategy.
    #[deprecated(
        since = "0.2.0",
        note = "use `vitbit_plan::Engine::{prepare, execute}` (plan once, execute per request)"
    )]
    pub fn run_gemm(
        &self,
        gpu: &mut Gpu,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        cfg: &ExecConfig,
    ) -> GemmOut {
        one_shot(*self, gpu, a, b, cfg, None, None)
    }

    /// `run_gemm` with an optional packed-weight cache handle for the
    /// stationary `B` operand. Only the packing strategies consult it
    /// (VitBit here; the other Table-3 rows never pack), and only when
    /// `B` really is a weight — activation-valued `B` operands (attention
    /// scores, `probs x V`) must pass `None`.
    #[deprecated(
        since = "0.2.0",
        note = "use `vitbit_plan::Engine` with a weight-carrying `GemmDesc`"
    )]
    pub fn run_gemm_weighted(
        &self,
        gpu: &mut Gpu,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        cfg: &ExecConfig,
        weight: WeightCtx<'_>,
    ) -> GemmOut {
        one_shot(*self, gpu, a, b, cfg, None, weight)
    }

    /// Adaptive GEMM dispatch: like `run_gemm`, but fused methods measure
    /// both the fused launch and the Tensor-core launch once per shape
    /// and reuse the faster choice thereafter.
    #[deprecated(
        since = "0.2.0",
        note = "use `vitbit_plan::Engine` with an adaptive `GemmDesc` (the engine owns the winner map)"
    )]
    pub fn run_gemm_tuned(
        &self,
        gpu: &mut Gpu,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        cfg: &ExecConfig,
        tuner: &mut GemmTuner,
    ) -> GemmOut {
        one_shot(*self, gpu, a, b, cfg, Some(tuner), None)
    }

    /// `run_gemm_tuned` with an optional packed-weight cache handle (see
    /// `run_gemm_weighted`).
    #[deprecated(
        since = "0.2.0",
        note = "use `vitbit_plan::Engine` with an adaptive, weight-carrying `GemmDesc`"
    )]
    pub fn run_gemm_tuned_weighted(
        &self,
        gpu: &mut Gpu,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        cfg: &ExecConfig,
        tuner: &mut GemmTuner,
        weight: WeightCtx<'_>,
    ) -> GemmOut {
        one_shot(*self, gpu, a, b, cfg, Some(tuner), weight)
    }

    /// The elementwise (CUDA-core kernel) variant this strategy implies:
    /// Tensor-core-only methods still run their CUDA-core kernels on INT
    /// cores (the paper's baseline pairing), TC+IC+FC runs them IC+FC, and
    /// VitBit uses packing (Section 3.3, "CUDA Core Kernel").
    pub fn ew_variant(&self, cfg: &ExecConfig) -> EwVariant {
        match self {
            Strategy::Tc | Strategy::Ic | Strategy::Tacker => EwVariant::Ic,
            Strategy::Fc => EwVariant::Fc,
            Strategy::IcFc | Strategy::TcIcFc => EwVariant::IcFc,
            Strategy::VitBit => EwVariant::VitBit(cfg.spec),
        }
    }

    /// Per-op elementwise variant: VitBit keeps SWAR packing where it pays
    /// (linear ops such as the residual add, whose lanes never need
    /// unpacking) and runs the non-linear CUDA kernels (GELU, softmax,
    /// LayerNorm, dropout) with plain INT+FP co-scheduling — the measured
    /// per-lane unpack/repack cost of non-linear bodies exceeds the
    /// load-halving benefit in this machine model (deviation documented in
    /// EXPERIMENTS.md).
    pub fn ew_variant_for(&self, cfg: &ExecConfig, swar_linear: bool) -> EwVariant {
        match (self, swar_linear) {
            (Strategy::VitBit, false) => EwVariant::IcFc,
            _ => self.ew_variant(cfg),
        }
    }

    /// Row-kernel (softmax / LayerNorm) variant: VitBit co-schedules INT
    /// and FP rows exactly like TC+IC+FC (packed rows lose more to
    /// unpack/repack than they gain; the FP rows differ from the integer
    /// spec only in the final float normalization — the same statistical
    /// accuracy contract the paper's own FP-converted paths carry).
    pub fn ew_variant_rows(&self, cfg: &ExecConfig) -> EwVariant {
        match self {
            Strategy::VitBit => EwVariant::IcFc,
            _ => self.ew_variant(cfg),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use vitbit_sim::OrinConfig;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    #[test]
    fn every_strategy_computes_the_same_gemm() {
        let mut g = gpu();
        let cfg = ExecConfig::int6();
        let a = gen::uniform_i8(20, 32, -32, 31, 1);
        let b = gen::uniform_i8(32, 320, -32, 31, 2);
        let want = gemm_i8_i32(&a, &b);
        for s in Strategy::ALL {
            let out = s.run_gemm(&mut g, &a, &b, &cfg);
            assert_eq!(out.c, want, "strategy {}", s.name());
        }
    }

    #[test]
    fn strategy_pipes_match_their_names() {
        let mut g = gpu();
        let cfg = ExecConfig::int6();
        let a = gen::uniform_i8(16, 32, -32, 31, 3);
        let b = gen::uniform_i8(32, 320, -32, 31, 4);
        let tc = Strategy::Tc.run_gemm(&mut g, &a, &b, &cfg).stats;
        assert!(tc.issued.tensor > 0 && tc.fp_ops == 0);
        let ic = Strategy::Ic.run_gemm(&mut g, &a, &b, &cfg).stats;
        assert!(ic.issued.tensor == 0 && ic.fp_ops == 0 && ic.int_ops > 0);
        let vb = Strategy::VitBit.run_gemm(&mut g, &a, &b, &cfg).stats;
        assert!(vb.issued.tensor > 0 && vb.fp_ops > 0 && vb.int_ops > 0);
        let tk = Strategy::Tacker.run_gemm(&mut g, &a, &b, &cfg).stats;
        assert!(tk.issued.tensor > 0 && tk.fp_ops == 0);
    }

    #[test]
    fn table3_metadata() {
        assert_eq!(Strategy::ALL.len(), 7);
        assert_eq!(Strategy::VitBit.applicability(), "T,C");
        assert_eq!(Strategy::Tc.applicability(), "T");
        assert!(Strategy::Tacker
            .description()
            .contains("Tensor cores and INT"));
        let names: Vec<_> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["TC", "IC", "FC", "IC+FC", "Tacker", "TC+IC+FC", "VitBit"]
        );
    }

    #[test]
    fn ew_variant_pairing() {
        let cfg = ExecConfig::int6();
        assert_eq!(Strategy::Tc.ew_variant(&cfg), EwVariant::Ic);
        assert_eq!(Strategy::TcIcFc.ew_variant(&cfg), EwVariant::IcFc);
        assert!(matches!(
            Strategy::VitBit.ew_variant(&cfg),
            EwVariant::VitBit(_)
        ));
    }

    #[test]
    fn tuned_shim_shares_state_with_the_engine_winner_map() {
        let mut g = gpu();
        let cfg = ExecConfig::int6();
        let a = gen::uniform_i8(16, 32, -32, 31, 5);
        let b = gen::uniform_i8(32, 320, -32, 31, 6);
        let mut tuner = GemmTuner::new();
        assert!(tuner.is_empty());
        let _ = Strategy::VitBit.run_gemm_tuned(&mut g, &a, &b, &cfg, &mut tuner);
        assert_eq!(tuner.len(), 1, "measurement recorded into caller's tuner");
        let _ = Strategy::VitBit.run_gemm_tuned(&mut g, &a, &b, &cfg, &mut tuner);
        assert_eq!(tuner.len(), 1, "second call reuses the recorded winner");
    }
}
