//! The Section-3.2 "initial study": measure GEMM time on each core class
//! and derive the Tensor:CUDA assignment ratio *m*.

use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::{determine_core_ratio, CoreRatio};
use vitbit_kernels::gemm::{run_fc, run_ic, run_ic_fc, run_ic_fc_packed, run_tc};
use vitbit_sim::Gpu;
use vitbit_tensor::gen;

/// Measured cycles for the five cases of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyResult {
    /// Tensor cores only.
    pub tc: u64,
    /// INT CUDA cores only.
    pub ic: u64,
    /// FP CUDA cores only.
    pub fc: u64,
    /// INT + FP concurrently.
    pub ic_fc: u64,
    /// INT + FP concurrently with packing.
    pub ic_fc_p: u64,
}

impl StudyResult {
    /// Ratios normalized to the TC time, in the paper's presentation order
    /// `[TC, IC, FC, IC+FC, IC+FC+P]` (paper: 1, ~7.5, ~7.5, ~6.5, ~4).
    pub fn normalized(&self) -> [f64; 5] {
        let t = self.tc as f64;
        [
            1.0,
            self.ic as f64 / t,
            self.fc as f64 / t,
            self.ic_fc as f64 / t,
            self.ic_fc_p as f64 / t,
        ]
    }

    /// The derived Tensor:CUDA ratio *m* : 1 (paper: 4 : 1), from the
    /// packed-CUDA time over the TC time.
    pub fn derived_ratio(&self) -> CoreRatio {
        determine_core_ratio(self.tc as f64, self.ic_fc_p as f64)
    }
}

/// Runs the study on a GEMM of the given shape with `bitwidth`-bit codes.
///
/// # Panics
/// Panics if the bitwidth has no feasible guarded packing.
pub fn run_initial_study(
    gpu: &mut Gpu,
    m: usize,
    n: usize,
    k: usize,
    bitwidth: u32,
) -> StudyResult {
    let spec = PackSpec::guarded(bitwidth, bitwidth).expect("valid bitwidth");
    let hi = ((1i32 << (bitwidth - 1)) - 1) as i8;
    let lo = -hi - 1;
    let a = gen::uniform_i8(m, k, lo, hi, 0xCAB);
    let b = gen::uniform_i8(k, n, lo, hi, 0xBEE);
    // Cold caches before each case: the study compares kernels from equal
    // starting conditions (and stays exactly reproducible).
    let cold = |gpu: &mut Gpu, f: &dyn Fn(&mut Gpu) -> u64| {
        gpu.cold_caches();
        f(gpu)
    };
    StudyResult {
        tc: cold(gpu, &|g| run_tc(g, &a, &b).expect("gemm").stats.cycles),
        ic: cold(gpu, &|g| run_ic(g, &a, &b).expect("gemm").stats.cycles),
        fc: cold(gpu, &|g| run_fc(g, &a, &b).expect("gemm").stats.cycles),
        ic_fc: cold(gpu, &|g| run_ic_fc(g, &a, &b).expect("gemm").stats.cycles),
        ic_fc_p: cold(gpu, &|g| {
            run_ic_fc_packed(g, &a, &b, &spec)
                .expect("gemm")
                .stats
                .cycles
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitbit_sim::OrinConfig;

    #[test]
    fn study_derives_a_plausible_ratio() {
        let mut gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
        let r = run_initial_study(&mut gpu, 64, 256, 256, 6);
        let norm = r.normalized();
        assert_eq!(norm[0], 1.0);
        assert!(norm[1] > 2.0, "CUDA cores well behind TC: {norm:?}");
        let ratio = r.derived_ratio();
        assert!(ratio.tc >= 2, "m should be at least 2, got {ratio:?}");
        assert_eq!(ratio.cuda, 1);
    }

    #[test]
    fn study_is_deterministic() {
        let mut gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
        let a = run_initial_study(&mut gpu, 32, 128, 128, 6);
        let b = run_initial_study(&mut gpu, 32, 128, 128, 6);
        assert_eq!(a, b);
    }
}
