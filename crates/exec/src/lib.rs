//! # vitbit-exec: Table-3 execution strategies
//!
//! One [`Strategy`] value selects, for every kernel kind in a DNN pipeline,
//! which simulated-GPU implementation runs it — exactly the comparison
//! groups of the paper's Table 3. The [`calibration`] module reruns the
//! Section-3.2 "initial study" that determines the Tensor:CUDA split ratio
//! *m*.
//!
//! The strategy type itself now lives in [`vitbit_plan`] (the plan/execute
//! engine dispatches on it); this crate re-exports it, together with the
//! engine types, so `vitbit_exec::Strategy` keeps working.

pub mod calibration;
pub mod strategy;

pub use calibration::{run_initial_study, StudyResult};
pub use strategy::{ExecConfig, GemmTuner, Strategy};
pub use vitbit_kernels::gemm::{PackedWeightCache, WeightCtx};
pub use vitbit_plan::{
    BatchResult, Completion, DeviceStatus, Engine, EngineError, EngineStats, FaultCause, GemmDesc,
    GpuPool, HealthPolicy, HealthState, LadderEvent, LadderRung, PlanId, PoolStats, RequestOutcome,
    ServePath, SimKnobs, Ticket,
};
