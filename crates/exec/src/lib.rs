//! # vitbit-exec: Table-3 execution strategies
//!
//! One [`Strategy`] value selects, for every kernel kind in a DNN pipeline,
//! which simulated-GPU implementation runs it — exactly the comparison
//! groups of the paper's Table 3. The [`calibration`] module reruns the
//! Section-3.2 "initial study" that determines the Tensor:CUDA split ratio
//! *m*.

pub mod calibration;
pub mod strategy;

pub use calibration::{run_initial_study, StudyResult};
pub use strategy::{ExecConfig, GemmTuner, Strategy};
pub use vitbit_kernels::gemm::{PackedWeightCache, WeightCtx};
