//! The Table-3 comparison groups — moved to [`vitbit_plan::strategy`] so
//! the plan/execute engine can dispatch on them without a dependency
//! cycle; re-exported here for compatibility.

pub use vitbit_plan::strategy::{ExecConfig, GemmTuner, Strategy};
