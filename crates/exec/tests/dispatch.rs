//! Strategy-layer behavioral tests: adaptive dispatch semantics, the
//! elementwise variant matrix, and cross-bitwidth study behavior.
//!
//! Deliberately exercises the `#[deprecated]` one-shot `run_gemm*` shims —
//! this file is the compile-and-behavior check that they keep working for
//! the one compatibility release (new code goes through
//! `vitbit_plan::Engine`).
#![allow(deprecated)]

use vitbit_core::ratio::CoreRatio;
use vitbit_exec::{run_initial_study, ExecConfig, GemmTuner, Strategy};
use vitbit_kernels::elementwise::EwVariant;
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::gen;
use vitbit_tensor::refgemm::gemm_i8_i32;

fn gpu() -> Gpu {
    Gpu::new(OrinConfig::test_small(), 128 << 20)
}

#[test]
fn adaptive_dispatch_never_loses_to_tc() {
    // Whatever the tuner picks, the result must match and the chosen
    // launch's cycles must be <= both probes' minimum (it returns the
    // faster one on the first encounter).
    let mut g = gpu();
    let cfg = ExecConfig::int6();
    let mut tuner = GemmTuner::new();
    let a = gen::uniform_i8(24, 64, -32, 31, 1);
    let b = gen::uniform_i8(64, 320, -32, 31, 2);
    let tuned = Strategy::VitBit.run_gemm_tuned(&mut g, &a, &b, &cfg, &mut tuner);
    g.cold_caches();
    let tc = Strategy::Tc.run_gemm(&mut g, &a, &b, &cfg);
    g.cold_caches();
    let fused = Strategy::VitBit.run_gemm(&mut g, &a, &b, &cfg);
    assert_eq!(tuned.c, tc.c);
    assert!(
        tuned.stats.cycles <= tc.stats.cycles.max(fused.stats.cycles),
        "tuned {} vs tc {} / fused {}",
        tuned.stats.cycles,
        tc.stats.cycles,
        fused.stats.cycles
    );
}

#[test]
fn non_fused_strategies_ignore_the_tuner() {
    let mut g = gpu();
    let cfg = ExecConfig::int6();
    let mut tuner = GemmTuner::new();
    let a = gen::uniform_i8(8, 32, -32, 31, 3);
    let b = gen::uniform_i8(32, 64, -32, 31, 4);
    for s in [Strategy::Tc, Strategy::Ic, Strategy::Fc, Strategy::IcFc] {
        let out = s.run_gemm_tuned(&mut g, &a, &b, &cfg, &mut tuner);
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }
    assert!(tuner.is_empty(), "non-fused strategies never tune");
}

#[test]
fn adaptive_off_always_runs_the_fused_kernel() {
    let mut g = gpu();
    let mut cfg = ExecConfig::int6();
    cfg.adaptive = false;
    let mut tuner = GemmTuner::new();
    let a = gen::uniform_i8(16, 32, -32, 31, 5);
    let b = gen::uniform_i8(32, 320, -32, 31, 6);
    let out = Strategy::VitBit.run_gemm_tuned(&mut g, &a, &b, &cfg, &mut tuner);
    assert_eq!(out.c, gemm_i8_i32(&a, &b));
    assert!(tuner.is_empty(), "no tuning when adaptive is off");
    assert!(
        out.stats.issued.tensor > 0 && out.stats.int_ops > 0,
        "fused launch ran"
    );
}

#[test]
fn elementwise_variant_matrix() {
    let cfg = ExecConfig::int6();
    // Full variant map per strategy.
    assert_eq!(Strategy::Tc.ew_variant(&cfg), EwVariant::Ic);
    assert_eq!(Strategy::Ic.ew_variant(&cfg), EwVariant::Ic);
    assert_eq!(Strategy::Fc.ew_variant(&cfg), EwVariant::Fc);
    assert_eq!(Strategy::Tacker.ew_variant(&cfg), EwVariant::Ic);
    assert_eq!(Strategy::IcFc.ew_variant(&cfg), EwVariant::IcFc);
    assert_eq!(Strategy::TcIcFc.ew_variant(&cfg), EwVariant::IcFc);
    assert!(matches!(
        Strategy::VitBit.ew_variant(&cfg),
        EwVariant::VitBit(_)
    ));
    // Per-op overrides for VitBit.
    assert!(matches!(
        Strategy::VitBit.ew_variant_for(&cfg, true),
        EwVariant::VitBit(_)
    ));
    assert_eq!(
        Strategy::VitBit.ew_variant_for(&cfg, false),
        EwVariant::IcFc
    );
    assert_eq!(Strategy::VitBit.ew_variant_rows(&cfg), EwVariant::IcFc);
    // Other strategies are unaffected by the per-op switch.
    assert_eq!(Strategy::Ic.ew_variant_for(&cfg, false), EwVariant::Ic);
    assert_eq!(Strategy::TcIcFc.ew_variant_rows(&cfg), EwVariant::IcFc);
}

#[test]
fn study_works_across_bitwidths() {
    let mut g = gpu();
    for bw in [4u32, 6, 8] {
        let r = run_initial_study(&mut g, 32, 128, 128, bw);
        assert!(r.tc > 0 && r.ic > 0 && r.fc > 0 && r.ic_fc > 0 && r.ic_fc_p > 0);
        let m = r.derived_ratio();
        assert!(m.tc >= 1 && m.cuda == 1, "bitwidth {bw}: {m:?}");
    }
}

#[test]
fn explicit_ratio_flows_into_fused_launches() {
    let mut g = gpu();
    let mut cfg = ExecConfig::int6();
    cfg.adaptive = false;
    let a = gen::uniform_i8(16, 16, -32, 31, 7);
    let b = gen::uniform_i8(16, 512, -32, 31, 8);
    cfg.ratio = Some(CoreRatio { tc: 9, cuda: 1 });
    let wide_tc = Strategy::TcIcFc.run_gemm(&mut g, &a, &b, &cfg);
    cfg.ratio = Some(CoreRatio { tc: 1, cuda: 1 });
    let narrow_tc = Strategy::TcIcFc.run_gemm(&mut g, &a, &b, &cfg);
    assert_eq!(wide_tc.c, narrow_tc.c);
    assert!(
        wide_tc.stats.issued.tensor > narrow_tc.stats.issued.tensor,
        "larger m must shift work to the Tensor cores"
    );
}
