//! Kernel fusion walkthrough: run one ViT-sized GEMM under every Table-3
//! strategy on the simulated Orin and print where the cycles and the
//! arithmetic go — the mechanism behind the paper's Figures 5 and 8.
//!
//! ```text
//! cargo run --release --example kernel_fusion
//! ```

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{Engine, GemmDesc};
use vitbit::sim::Gpu;
use vitbit::tensor::{gen, refgemm};

fn main() {
    let cfg = ExecConfig::int6();
    let mut gpu = Gpu::orin();
    let mut engine = Engine::new();
    // The ViT-Base Linear shape: (197 tokens x 768) x (768 x 768).
    let a = gen::uniform_i8(197, 768, -32, 31, 1);
    let b = gen::uniform_i8(768, 768, -32, 31, 2);
    let want = refgemm::gemm_i8_i32(&a, &b);

    println!(
        "{:<9} {:>10} {:>8} {:>9} {:>9} {:>9} {:>10}",
        "method", "cycles", "vs TC", "TC ops%", "INT ops%", "FP ops%", "exact"
    );
    let mut tc_cycles = 0u64;
    let mut vitbit_stats = None;
    for s in Strategy::ALL {
        gpu.cold_caches();
        // One plan per strategy; this example shows each raw launch once,
        // so every execute is the plan's first (cold) run.
        let mut desc = GemmDesc::from_exec(s, &cfg, &gpu, 197, 768, 768, Some(1));
        desc.adaptive = false; // show the raw fused launches, no dispatch
        let out = engine.run(&mut gpu, desc, &a, &b).expect("run");
        let st = &out.stats;
        if s == Strategy::Tc {
            tc_cycles = st.cycles;
        }
        if s == Strategy::VitBit {
            vitbit_stats = Some(st.clone());
        }
        let total = st.total_ops().max(1) as f64;
        println!(
            "{:<9} {:>10} {:>7.2}x {:>8.1}% {:>8.1}% {:>8.1}% {:>10}",
            s.name(),
            st.cycles,
            tc_cycles as f64 / st.cycles as f64,
            100.0 * st.tc_ops as f64 / total,
            100.0 * st.int_ops as f64 / total,
            100.0 * st.fp_ops as f64 / total,
            out.c == want,
        );
    }
    if let Some(st) = vitbit_stats {
        println!("\nFull stats dump of the VitBit launch:");
        print!("{}", st.dump());
    }
    println!(
        "\nEvery method computes the identical integer result; the fused ones\n\
         (Tacker, TC+IC+FC, VitBit) split the columns of B across Tensor-core\n\
         blocks and INT/FP CUDA blocks co-resident in one launch (the paper's\n\
         Algorithm-2 co-scheduling at block granularity). Shown here as raw\n\
         fused launches; the ViT pipeline dispatches adaptively per shape\n\
         (ExecConfig::adaptive), keeping the faster of fused and TC — see\n\
         EXPERIMENTS.md for why fused GEMMs lose to TC in this machine model."
    );
}
