//! Quickstart: pack low-bitwidth integers, multiply them with one
//! instruction's worth of work, and verify exactness — first on the host
//! CPU, then on the simulated Jetson Orin GPU.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vitbit::core::host::{packed_gemm, packed_gemm_wide};
use vitbit::core::pack::{pack_codes, unpack_codes};
use vitbit::core::policy::PackSpec;
use vitbit::core::swar::PackedAcc;
use vitbit::kernels::gemm::run_packed;
use vitbit::sim::Gpu;
use vitbit::tensor::{gen, refgemm};

fn main() {
    // 1. The Figure-3 packing policy: INT6 packs two values per register.
    let spec = PackSpec::guarded(6, 6).expect("INT6 is packable");
    println!(
        "INT6 spec: {} lanes of {} bits, exact for chunks of {} MACs, \
         theoretical INT-instruction gain {:.2}x",
        spec.lanes,
        spec.lane_bits,
        spec.chunk_len(),
        spec.packing_gain()
    );

    // 2. Pack / unpack round trip.
    let codes: Vec<i8> = vec![-32, 31, 0, -1, 17, -20];
    let regs = pack_codes(&codes, &spec).expect("length is a lane multiple");
    println!(
        "packed {:?} into {} registers: {:08x?}",
        codes,
        regs.len(),
        regs
    );
    assert_eq!(unpack_codes(&regs, &spec), codes);

    // 3. One packed multiply-accumulate stream: a single IMAD per register
    //    covers `lanes` multiplications at once.
    let mut acc = PackedAcc::new(spec);
    for (i, reg) in regs.iter().enumerate() {
        acc.mac(7 + i as u32, *reg);
    }
    println!("packed accumulator lanes: {:?}", acc.finish());

    // 4. A whole GEMM on the host CPU, exact vs the scalar reference.
    let a = gen::uniform_i8(32, 96, -32, 31, 1);
    let b = gen::uniform_i8(96, 64, -32, 31, 2);
    let reference = refgemm::gemm_i8_i32(&a, &b);
    assert_eq!(packed_gemm(&a, &b, &spec).unwrap(), reference);
    assert_eq!(packed_gemm_wide(&a, &b, &spec).unwrap(), reference);
    println!("host packed GEMM (u32 and u64 registers): exact");

    // 5. The same GEMM on the simulated Jetson Orin GPU's INT CUDA cores.
    let mut gpu = Gpu::orin();
    let out = run_packed(&mut gpu, &a, &b, &spec).expect("gemm");
    assert_eq!(out.c, reference);
    println!(
        "simulated packed GEMM: exact, {} cycles, {} INT instructions ({:.2} ms at {:.2} GHz)",
        out.stats.cycles,
        out.stats.issued.int,
        out.stats.time_ms(gpu.config()),
        gpu.config().clock_ghz
    );
}
