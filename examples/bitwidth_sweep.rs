//! Arbitrary-bitwidth packing (the paper's Figure-3 policy beyond INT8):
//! sweep the value bitwidth and watch the packing factor, exactness window
//! and measured gains change — the paper's "future work" lower-bitwidth
//! study, implemented.
//!
//! ```text
//! cargo run --release --example bitwidth_sweep
//! ```

use vitbit::core::policy::{PackPolicy, PackSpec};
use vitbit::kernels::gemm::{run_ic, run_packed};
use vitbit::sim::Gpu;
use vitbit::tensor::{gen, refgemm};

fn main() {
    println!(
        "{:<5} {:>6} {:>10} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "bits", "lanes", "lane bits", "safe K", "IC cyc", "packed", "speedup", "exact"
    );
    let mut gpu = Gpu::orin();
    let (m, n, k) = (64usize, 512usize, 384usize);
    for bw in [4u32, 5, 6, 7, 8] {
        let spec = PackSpec::guarded(bw, bw).expect("packable");
        let hi = ((1i32 << (bw - 1)) - 1) as i8;
        let a = gen::uniform_i8(m, k, -hi - 1, hi, u64::from(bw));
        let b = gen::uniform_i8(k, n, -hi - 1, hi, u64::from(bw) + 9);
        let want = refgemm::gemm_i8_i32(&a, &b);
        gpu.cold_caches();
        let ic = run_ic(&mut gpu, &a, &b).expect("gemm");
        gpu.cold_caches();
        let pk = run_packed(&mut gpu, &a, &b, &spec).expect("gemm");
        println!(
            "{:<5} {:>6} {:>10} {:>8} {:>10} {:>10} {:>8.2}x {:>9}",
            bw,
            spec.lanes,
            spec.lane_bits,
            spec.max_safe_k(),
            ic.stats.cycles,
            pk.stats.cycles,
            ic.stats.cycles as f64 / pk.stats.cycles as f64,
            pk.c == want,
        );
    }

    // The paper's literal policy (no guard bits) wraps for long dot
    // products — demonstrate the failure mode the guarded policy closes.
    println!("\npaper policy exactness window (INT8, worst-case operands):");
    let spec8 = PackSpec::paper(8).expect("INT8 packs 2 per Figure 3(b)");
    for k in [1usize, 2, 8, 64] {
        let a = vitbit::tensor::Matrix::from_fn(4, k, |_, _| 127i8);
        let b = vitbit::tensor::Matrix::from_fn(k, 4, |_, _| 127i8);
        let exact = vitbit::core::host::packed_gemm(&a, &b, &spec8).unwrap()
            == refgemm::gemm_i8_i32(&a, &b);
        println!(
            "  K = {k:>3}: paper policy exact = {exact} (safe K = {}, policy = {:?})",
            spec8.max_safe_k(),
            PackPolicy::Paper
        );
    }
}
