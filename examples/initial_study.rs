//! Reproduces the paper's Section-3.2 "initial study" that motivates the
//! 4:1 Tensor:CUDA split — measuring a ViT-sized GEMM on each core class.
//!
//! ```text
//! cargo run --release --example initial_study
//! ```

use vitbit::exec::run_initial_study;
use vitbit::sim::Gpu;

fn main() {
    let mut gpu = Gpu::orin();
    println!("measuring GEMM 197x768x768 at INT6 on each core class ...");
    let r = run_initial_study(&mut gpu, 197, 768, 768, 6);
    let names = ["TC", "IC", "FC", "IC+FC", "IC+FC+P"];
    let paper = [1.0, 7.5, 7.5, 6.5, 4.0];
    for (i, x) in r.normalized().iter().enumerate() {
        println!(
            "{:<9} {:>6.2}x TC   (paper ~{:>3.1}x)",
            names[i], x, paper[i]
        );
    }
    let m = r.derived_ratio();
    println!("=> assignment ratio m = {}:{}  (paper: 4:1)", m.tc, m.cuda);
}
