//! End-to-end integer ViT inference on the simulated Orin, comparing the
//! Tensor-core baseline with full VitBit — the headline experiment
//! (Figure 5) at example scale.
//!
//! Runs a reduced ViT (half dims) so the example finishes in seconds; pass
//! `--base` for the full ViT-Base (several minutes).
//!
//! ```text
//! cargo run --release --example vit_inference [--base]
//! ```

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::Engine;
use vitbit::sim::Gpu;
use vitbit::vit::{run_vit_planned, ViTConfig, ViTModel, VitPlan};

fn main() {
    let full = std::env::args().any(|a| a == "--base");
    let cfg = if full {
        ViTConfig::base()
    } else {
        ViTConfig {
            blocks: 2,
            dim: 256,
            heads: 4,
            head_dim: 64,
            mlp_dim: 512,
            tokens: 64,
            classes: 20,
            bitwidth: 6,
        }
    };
    println!(
        "model: {} blocks, dim {}, {} heads, MLP {}, {} tokens, INT{} ({:.2} GMACs)",
        cfg.blocks,
        cfg.dim,
        cfg.heads,
        cfg.mlp_dim,
        cfg.tokens,
        cfg.bitwidth,
        cfg.gemm_macs() as f64 / 1e9
    );
    let model = ViTModel::new(cfg, 42);
    let exec = ExecConfig::guarded(cfg.bitwidth);
    let input = model.synthetic_input(7);
    let reference = vitbit::vit::reference::forward(&model, &input);

    let mut gpu = Gpu::orin();
    let blocks = if full { Some(1) } else { None };
    let mut tc_cycles = 0u64;
    for s in [
        Strategy::Tc,
        Strategy::Tacker,
        Strategy::TcIcFc,
        Strategy::VitBit,
    ] {
        // Plan the strategy's forward pass once, then execute it — the
        // engine packs each weight a single time while planning-time work
        // stays out of the simulated cycle counts.
        let mut engine = Engine::new();
        let plan = VitPlan::build(&mut engine, &gpu, &model, s, &exec, blocks);
        let run = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &input);
        let cycles = run.total_cycles();
        if s == Strategy::Tc {
            tc_cycles = cycles;
        }
        let argmax = |m: &vitbit::tensor::Matrix<i32>| {
            m.row(0)
                .iter()
                .enumerate()
                .max_by_key(|&(_, v)| *v)
                .map(|(i, _)| i)
                .unwrap()
        };
        println!(
            "{:<9} cycles {:>12} ({:.2} ms model time)  speedup {:>5.2}x  top-1 {} (ref {})",
            s.name(),
            cycles,
            gpu.config().cycles_to_ms(cycles),
            tc_cycles as f64 / cycles as f64,
            argmax(&run.logits),
            argmax(&reference),
        );
    }
    println!("\n(paper Figure 5: Tacker 1.06x, TC+IC+FC 1.11x, VitBit 1.22x over TC)");
}
