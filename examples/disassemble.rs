//! Inspect generated kernels: disassemble the packed INT-core GEMM and the
//! Tensor-core GEMM, and compare their static instruction mixes — the
//! instruction-stream view of what packing changes (paper Figure 9's
//! mechanism).
//!
//! ```text
//! cargo run --release --example disassemble
//! ```

use vitbit::core::policy::PackSpec;
use vitbit::kernels::gemm::cuda::{cuda_gemm_program, CudaElem, RoleGeom};
use vitbit::kernels::gemm::tc::tc_gemm_program;
use vitbit::sim::isa::PipeClass;
use vitbit::sim::trace::{disasm, static_mix};

fn main() {
    let spec = PackSpec::guarded(6, 6).expect("packable");
    let geom = RoleGeom::standalone(1);
    let programs = [
        (
            "INT zero-masking",
            cuda_gemm_program(CudaElem::Int, geom, 0),
        ),
        (
            "INT packed (SWAR)",
            cuda_gemm_program(CudaElem::Packed(spec), geom, 0),
        ),
        ("FP32 converted", cuda_gemm_program(CudaElem::Fp, geom, 0)),
        ("Tensor core", tc_gemm_program(2, 0)),
    ];
    println!(
        "{:<20} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "kernel", "insts", "int", "fp", "tc", "lsu", "sfu", "ctrl"
    );
    for (name, p) in &programs {
        let m = static_mix(p);
        println!(
            "{name:<20} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            m.total(),
            m.int,
            m.fp,
            m.tensor,
            m.lsu,
            m.sfu,
            m.ctrl
        );
    }
    let _ = PipeClass::Int;

    // Print the first instructions of the packed kernel's inner loop.
    let packed = &programs[1].1;
    println!("\n--- packed GEMM disassembly (first 48 instructions) ---");
    for line in disasm(packed).lines().take(49) {
        println!("{line}");
    }
}
