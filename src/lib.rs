//! # VitBit — register operand packing for embedded GPUs
//!
//! A comprehensive Rust reproduction of *"VitBit: Enhancing Embedded GPU
//! Performance for AI Workloads through Register Operand Packing"*
//! (Jeon et al., ICPP '24), built on a cycle-approximate functional +
//! timing simulator of the NVIDIA Jetson AGX Orin GPU.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] ([`vitbit_core`]) — the paper's contribution: the Figure-3
//!   packing policy, SWAR multiply-accumulate with guard-bit-exact
//!   accumulation, the bias (zero-point) correction, Algorithm-1 input
//!   preprocessing and the Equation-1 work-split ratios — plus a real
//!   host-CPU packed GEMM.
//! * [`sim`] ([`vitbit_sim`]) — the Orin GPU model: SMs, GTO warp
//!   schedulers with dual-issue to distinct pipes, INT/FP/Tensor/SFU/LSU
//!   pipes, shared memory, L1/L2 caches, DRAM bandwidth regulation, and a
//!   functional SIMT executor over a SASS-like ISA.
//! * [`kernels`] ([`vitbit_kernels`]) — GEMM kernels (Tensor-core,
//!   INT-CUDA, FP-CUDA, packed, and the fused warp-role kernels of
//!   Algorithm 2) and the ViT attention-block CUDA kernels (Shiftmax,
//!   ShiftGELU, I-LayerNorm, dropout, residual add) in all Table-3
//!   variants.
//! * [`plan`] ([`vitbit_plan`]) — the plan/execute engine: a `GemmDesc`
//!   resolves once into a cached `GemmPlan` (pack policy, Equation-1
//!   split, grid geometry, packed weights), then `Engine::execute` runs
//!   it per request with zero re-packing.
//! * [`exec`] ([`vitbit_exec`]) — the Table-3 strategies and the
//!   Section-3.2 calibration study.
//! * [`vit`] ([`vitbit_vit`]) — an integer-only ViT-Base running end to
//!   end on the simulator under any strategy.
//! * [`tensor`] ([`vitbit_tensor`]) — matrices, quantization, reference
//!   GEMMs.
//! * [`verify`] ([`vitbit_verify`]) — static lane-safety and
//!   shared-memory hazard verification over the emitted kernel
//!   programs, with a mutation-mode self-test and the
//!   `verify-kernels` sweep CLI.
//! * [`sched`] ([`vitbit_sched`]) — static instruction scheduling
//!   (per-block dependence graphs + list scheduling for pipe overlap)
//!   and register-pressure analysis over emitted programs; the plan
//!   engine adopts a scheduled program only after the verifier
//!   re-proves it (fail-closed).
//!
//! ## Quickstart
//!
//! ```
//! use vitbit::core::policy::PackSpec;
//! use vitbit::core::host::packed_gemm;
//! use vitbit::tensor::{gen, refgemm};
//!
//! // Pack two INT6 values per register; guarded accumulation is exact.
//! let spec = PackSpec::guarded(6, 6).unwrap();
//! let a = gen::uniform_i8(16, 64, -32, 31, 1);
//! let b = gen::uniform_i8(64, 32, -32, 31, 2);
//! let packed = packed_gemm(&a, &b, &spec).unwrap();
//! assert_eq!(packed, refgemm::gemm_i8_i32(&a, &b));
//! ```
//!
//! See `examples/` for simulated-GPU runs and DESIGN.md / EXPERIMENTS.md
//! for the reproduction methodology and results.

pub use vitbit_core as core;
pub use vitbit_exec as exec;
pub use vitbit_kernels as kernels;
pub use vitbit_plan as plan;
pub use vitbit_sched as sched;
pub use vitbit_sim as sim;
pub use vitbit_tensor as tensor;
pub use vitbit_verify as verify;
pub use vitbit_vit as vit;
